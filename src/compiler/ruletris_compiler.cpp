#include "compiler/ruletris_compiler.h"

#include <stdexcept>

#include "compiler/update_builder.h"

namespace ruletris::compiler {

TableUpdate chain_updates(const TableUpdate& first, const TableUpdate& second) {
  UpdateBuilder builder;
  for (const TableUpdate* u : {&first, &second}) {
    for (const auto& [a, b] : u->dag.removed_edges) builder.remove_edge(a, b);
    for (flowspace::RuleId id : u->removed) builder.remove_rule(id);
    for (const Rule& r : u->added) builder.add_rule(r);
    for (const auto& [a, b] : u->dag.added_edges) builder.add_edge(a, b);
  }
  return builder.build();
}

RuleTrisCompiler::RuleTrisCompiler(
    const PolicySpec& spec, std::map<std::string, flowspace::FlowTable> initial_tables) {
  root_ = build(spec, initial_tables);

  // Record the path from each leaf to the root for update propagation.
  struct Walker {
    std::map<std::string, LeafRef>& leaves;
    std::map<LeafNode*, std::string> names;
    void walk(PolicyNode* node, std::vector<std::pair<ComposedNode*, bool>> path) {
      if (auto* composed = dynamic_cast<ComposedNode*>(node)) {
        auto left_path = path;
        left_path.insert(left_path.begin(), {composed, true});
        walk(&composed->left(), left_path);
        auto right_path = path;
        right_path.insert(right_path.begin(), {composed, false});
        walk(&composed->right(), right_path);
      } else if (auto* leaf = dynamic_cast<LeafNode*>(node)) {
        leaves[names.at(leaf)].path = std::move(path);
      }
    }
  };
  Walker walker{leaves_, {}};
  for (auto& [name, ref] : leaves_) walker.names[ref.node] = name;
  walker.walk(root_.get(), {});
}

std::unique_ptr<PolicyNode> RuleTrisCompiler::build(
    const PolicySpec& spec, std::map<std::string, flowspace::FlowTable>& tables) {
  if (spec.is_leaf) {
    auto it = tables.find(spec.leaf_name);
    auto leaf = std::make_unique<LeafNode>(
        it == tables.end() ? flowspace::FlowTable() : std::move(it->second));
    if (leaves_.count(spec.leaf_name)) {
      throw std::invalid_argument("duplicate leaf name: " + spec.leaf_name);
    }
    leaves_[spec.leaf_name].node = leaf.get();
    return leaf;
  }
  auto left = build(*spec.left, tables);
  auto right = build(*spec.right, tables);
  return std::make_unique<ComposedNode>(static_cast<OpKind>(spec.op), std::move(left),
                                        std::move(right));
}

TableUpdate RuleTrisCompiler::propagate(const std::string& leaf, TableUpdate update) {
  const auto& ref = leaves_.at(leaf);
  for (const auto& [node, from_left] : ref.path) {
    if (update.empty()) break;
    update = node->apply_child_update(from_left, update);
  }
  return update;
}

TableUpdate RuleTrisCompiler::insert(const std::string& leaf, Rule rule) {
  return propagate(leaf, leaves_.at(leaf).node->insert(std::move(rule)));
}

TableUpdate RuleTrisCompiler::remove(const std::string& leaf, flowspace::RuleId id) {
  return propagate(leaf, leaves_.at(leaf).node->remove(id));
}

TableUpdate RuleTrisCompiler::modify(const std::string& leaf, flowspace::RuleId old_id,
                                     Rule new_rule) {
  TableUpdate removed = remove(leaf, old_id);
  TableUpdate added = insert(leaf, std::move(new_rule));
  return chain_updates(removed, added);
}

const LeafNode& RuleTrisCompiler::leaf(const std::string& name) const {
  return *leaves_.at(name).node;
}

}  // namespace ruletris::compiler
