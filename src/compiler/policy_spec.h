// Declarative policy composition spec, e.g. (monitor + router) $ fallback.
//
// A PolicySpec is a small expression tree over named leaf tables; compilers
// (RuleTris, CoVisor, Baseline) instantiate their own runtime trees from it,
// so one bench scenario drives all three with the same configuration.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ruletris::compiler {

enum class OpKind;  // defined in composed_node.h

struct PolicySpec {
  bool is_leaf = false;
  std::string leaf_name;          // when is_leaf
  int op = 0;                     // OpKind as int to avoid a header cycle
  std::shared_ptr<PolicySpec> left, right;

  static PolicySpec leaf(std::string name) {
    PolicySpec s;
    s.is_leaf = true;
    s.leaf_name = std::move(name);
    return s;
  }
  static PolicySpec combine(int op, PolicySpec l, PolicySpec r) {
    PolicySpec s;
    s.op = op;
    s.left = std::make_shared<PolicySpec>(std::move(l));
    s.right = std::make_shared<PolicySpec>(std::move(r));
    return s;
  }
  static PolicySpec parallel(PolicySpec l, PolicySpec r) {
    return combine(0, std::move(l), std::move(r));
  }
  static PolicySpec sequential(PolicySpec l, PolicySpec r) {
    return combine(1, std::move(l), std::move(r));
  }
  static PolicySpec priority(PolicySpec l, PolicySpec r) {
    return combine(2, std::move(l), std::move(r));
  }

  /// All leaf names, left-to-right.
  std::vector<std::string> leaf_names() const {
    std::vector<std::string> out;
    collect(out);
    return out;
  }

 private:
  void collect(std::vector<std::string>& out) const {
    if (is_leaf) {
      out.push_back(leaf_name);
      return;
    }
    left->collect(out);
    right->collect(out);
  }
};

}  // namespace ruletris::compiler
