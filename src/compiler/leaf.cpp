#include "compiler/leaf.h"

#include <algorithm>

#include "dag/builder.h"

namespace ruletris::compiler {

using flowspace::FlowTable;

LeafNode::LeafNode(FlowTable table) : table_(std::move(table)) {
  // Bulk extraction honours the process-wide thread knob (serial when 0/1).
  graph_ = dag::build_min_dag_parallel(table_, dag::default_build_threads());
  for (const Rule& r : table_.rules()) index_.insert(r.id, r.match);
}

std::vector<Rule> LeafNode::visible_rules_in_order() const {
  return table_.rules();
}

bool LeafNode::is_direct(size_t hi_pos, size_t lo_pos) const {
  const auto& rules = table_.rules();
  auto overlap = rules[hi_pos].match.intersect(rules[lo_pos].match);
  if (!overlap) return false;
  // Only rules overlapping the overlap region can cover any of it; pull them
  // from the index instead of copying every match between the positions.
  auto& between = between_scratch_;
  between.clear();
  index_.for_each_overlapping(*overlap,
                              [&](flowspace::RuleId id, const TernaryMatch& m) {
                                const size_t p = table_.position(id);
                                if (p > hi_pos && p < lo_pos) between.push_back(m);
                              });
  std::sort(between.begin(), between.end(),
            [](const TernaryMatch& a, const TernaryMatch& b) {
              return a.specified_bits() < b.specified_bits();
            });
  switch (flowspace::try_cover(*overlap, {between.data(), between.size()},
                               cover_scratch_)) {
    case flowspace::CoverResult::kCovered: return false;
    case flowspace::CoverResult::kNotCovered: return true;
    case flowspace::CoverResult::kOverflow: break;
  }
  return true;  // conservative: keep the edge on fragment overflow
}

TableUpdate LeafNode::insert(Rule rule) {
  TableUpdate update;
  const RuleId id = rule.id;
  const TernaryMatch match = rule.match;

  // Overlap candidates *before* insertion: only pairs among these can gain
  // or lose direct-dependency status when `rule` enters the order.
  const std::vector<RuleId> candidates = index_.find_overlapping(match);

  table_.insert(std::move(rule));
  index_.insert(id, match);
  graph_.add_vertex(id);
  update.added.push_back(table_.rule(id));
  update.dag.added_vertices.push_back(id);

  const size_t rpos = table_.position(id);

  // New edges incident to the inserted rule.
  for (RuleId other : candidates) {
    const size_t opos = table_.position(other);
    if (opos < rpos) {
      if (is_direct(opos, rpos)) {
        graph_.add_edge(id, other);
        update.dag.added_edges.emplace_back(id, other);
      }
    } else {
      if (is_direct(rpos, opos)) {
        graph_.add_edge(other, id);
        update.dag.added_edges.emplace_back(other, id);
      }
    }
  }

  // Existing edges that the inserted rule may now cover: pairs (u, s) with
  // s above `rule` above u, both overlapping `rule`.
  for (RuleId u : candidates) {
    const size_t upos = table_.position(u);
    if (upos <= rpos) continue;
    for (RuleId s : graph_.successors(u)) {
      if (s == id) continue;
      const size_t spos = table_.position(s);
      if (spos >= rpos) continue;
      if (!match.overlaps(table_.rule(s).match)) continue;
      if (!is_direct(spos, upos)) {
        update.dag.removed_edges.emplace_back(u, s);
      }
    }
  }
  for (const auto& [u, s] : update.dag.removed_edges) graph_.remove_edge(u, s);

  return update;
}

TableUpdate LeafNode::remove(RuleId id) {
  TableUpdate update;
  if (!table_.contains(id)) return update;

  const size_t rpos = table_.position(id);
  const TernaryMatch match = table_.rule(id).match;

  // Pairs that may become direct once `id` stops covering them: both ends
  // overlap `id` and straddle its position.
  std::vector<RuleId> candidates = index_.find_overlapping(match);
  std::vector<RuleId> above, below;
  for (RuleId c : candidates) {
    if (c == id) continue;
    (table_.position(c) < rpos ? above : below).push_back(c);
  }

  for (RuleId succ : graph_.successors(id)) update.dag.removed_edges.emplace_back(id, succ);
  for (RuleId pred : graph_.predecessors(id)) update.dag.removed_edges.emplace_back(pred, id);
  graph_.remove_vertex(id);
  index_.erase(id);
  table_.erase(id);
  update.removed.push_back(id);
  update.dag.removed_vertices.push_back(id);

  for (RuleId u : below) {
    const size_t upos = table_.position(u);
    for (RuleId s : above) {
      if (graph_.has_edge(u, s)) continue;
      const size_t spos = table_.position(s);
      if (!table_.rule(u).match.overlaps(table_.rule(s).match)) continue;
      if (is_direct(spos, upos)) {
        graph_.add_edge(u, s);
        update.dag.added_edges.emplace_back(u, s);
      }
    }
  }
  return update;
}

}  // namespace ruletris::compiler
