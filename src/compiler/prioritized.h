// Prioritized rule-update stream: the output format of the Baseline and
// CoVisor compilers (and the input format of the priority-based firmware).
//
// Unlike RuleTris updates, these carry integer priorities and no DAG —
// exactly what state-of-the-art compilers ship to switches (Sec. II-c).
#pragma once

#include <string>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::compiler {

struct PrioritizedOp {
  enum class Kind { kAdd, kDelete, kModify };

  Kind kind = Kind::kAdd;
  flowspace::Rule rule;  // kDelete: only `id` is meaningful;
                         // kModify: new priority/actions for existing `id`.

  static PrioritizedOp add(flowspace::Rule r) {
    return {Kind::kAdd, std::move(r)};
  }
  static PrioritizedOp del(flowspace::RuleId id) {
    flowspace::Rule r;
    r.id = id;
    return {Kind::kDelete, std::move(r)};
  }
  static PrioritizedOp mod(flowspace::Rule r) {
    return {Kind::kModify, std::move(r)};
  }
};

using PrioritizedUpdate = std::vector<PrioritizedOp>;

}  // namespace ruletris::compiler
