// The rule dependency graph (DAG) — RuleTris's central abstraction.
//
// Vertices are rule ids. A directed edge u -> v means "u depends on v":
// v must be matched before u, i.e. v must sit at a higher-priority TCAM
// address than u (paper Sec. II-b). The *minimum* DAG contains an edge only
// where swapping the two rules would change classification semantics; all
// construction algorithms in src/compiler and src/dag produce minimum DAGs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dag/id_set.h"
#include "flowspace/rule.h"

namespace ruletris::dag {

using flowspace::RuleId;

/// Incremental change to a DAG, produced by the front-end compilers and
/// shipped to the back-end alongside rule updates (Sec. III-B).
struct DagDelta {
  std::vector<RuleId> removed_vertices;
  std::vector<std::pair<RuleId, RuleId>> removed_edges;
  std::vector<RuleId> added_vertices;
  std::vector<std::pair<RuleId, RuleId>> added_edges;  // (u, v) for u -> v

  bool empty() const {
    return removed_vertices.empty() && removed_edges.empty() &&
           added_vertices.empty() && added_edges.empty();
  }
  void clear() {
    removed_vertices.clear();
    removed_edges.clear();
    added_vertices.clear();
    added_edges.clear();
  }
};

class DependencyGraph {
 public:
  DependencyGraph() = default;

  size_t vertex_count() const { return nodes_.size(); }
  size_t edge_count() const { return edge_count_; }

  bool has_vertex(RuleId v) const { return nodes_.count(v) != 0; }
  bool has_edge(RuleId u, RuleId v) const;

  /// Returns true when the vertex was created (false: already present).
  bool add_vertex(RuleId v);

  /// Removes the vertex and all incident edges.
  void remove_vertex(RuleId v);

  /// What an add_edge call actually changed — the journaled scheduler
  /// needs this to log exactly the mutations a rollback must invert,
  /// without paying separate existence probes on the apply fast path.
  struct EdgeAdd {
    bool added = false;      // the edge itself was new
    bool created_u = false;  // endpoint u was created implicitly
    bool created_v = false;  // endpoint v was created implicitly
  };

  /// Adds u -> v ("v must be matched before u"). Adds missing vertices.
  /// No-op if the edge exists. Self-edges are rejected.
  EdgeAdd add_edge(RuleId u, RuleId v);

  /// Bulk-bootstrap for restore paths: loads `vertices` plus `edges` whose
  /// endpoints index into `vertices` (edge (i, j) means vertices[i] ->
  /// vertices[j]). The graph must be empty. One degree-counting pass
  /// pre-sizes every adjacency set and a cached-pointer pass fills them, so
  /// the load costs a fraction of per-edge add_edge() calls. Throws
  /// std::invalid_argument on out-of-range indices, duplicate vertex ids,
  /// self-edges, or a non-empty graph.
  void bulk_load_indexed(const std::vector<RuleId>& vertices,
                         const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  /// Returns true when the edge existed and was removed.
  bool remove_edge(RuleId u, RuleId v);

  /// Out-neighbours of u: the rules u depends on (placed above u).
  const IdSet& successors(RuleId u) const;

  /// In-neighbours of u: the rules depending on u (placed below u).
  const IdSet& predecessors(RuleId u) const;

  std::vector<RuleId> vertices() const;

  /// Vertices with no successors (may be matched last / sit anywhere low).
  std::vector<RuleId> sources() const;
  /// Vertices with no predecessors (nothing forces anything below them).
  std::vector<RuleId> sinks() const;

  /// Topological order from high match-priority to low: v appears before u
  /// whenever edge u -> v exists. Throws std::runtime_error on a cycle.
  std::vector<RuleId> topo_order_high_to_low() const;

  /// True iff adding u -> v would create a cycle.
  bool would_create_cycle(RuleId u, RuleId v) const;

  /// True iff v is reachable from u along dependency edges.
  bool reaches(RuleId u, RuleId v) const;

  /// Applies a delta: removals first, then additions.
  void apply(const DagDelta& delta);

  std::vector<std::pair<RuleId, RuleId>> edges() const;

  bool operator==(const DependencyGraph& other) const;

  std::string to_string() const;

 private:
  struct Node {
    IdSet out;  // successors
    IdSet in;   // predecessors
  };

  const Node& node(RuleId v) const;

  std::unordered_map<RuleId, Node> nodes_;
  size_t edge_count_ = 0;
};

}  // namespace ruletris::dag
