// Flat open-addressing hash set of rule ids — the DAG's adjacency storage.
//
// std::unordered_set allocates one heap node per element, which makes warm
// boot (bulk-loading ~10^5 edges) and dense compile-time graphs allocation
// bound. IdSet stores elements inline in a single power-of-two slot array
// (linear probing, backward-shift deletion, fibonacci hashing), so a set
// costs one allocation total and bulk loads run at memcpy-like speed. The
// interface mirrors the unordered_set subset the graph code uses: insert /
// erase / count / size / empty / clear / reserve / iteration / operator==.
//
// The all-ones id is reserved as the empty-slot sentinel; rule ids are
// sequence numbers in practice, and insert() rejects the sentinel loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <vector>

#include "flowspace/rule.h"

namespace ruletris::dag {

class IdSet {
  using Id = flowspace::RuleId;
  static constexpr Id kEmpty = ~Id{0};
  static constexpr uint64_t kMix = 0x9E3779B97F4A7C15ull;  // 2^64 / phi

 public:
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Id;
    using difference_type = std::ptrdiff_t;
    using pointer = const Id*;
    using reference = const Id&;

    const_iterator() = default;
    const_iterator(const Id* p, const Id* end) : p_(p), end_(end) { skip(); }
    reference operator*() const { return *p_; }
    const_iterator& operator++() {
      ++p_;
      skip();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return p_ == o.p_; }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }

   private:
    void skip() {
      while (p_ != end_ && *p_ == kEmpty) ++p_;
    }
    const Id* p_ = nullptr;
    const Id* end_ = nullptr;
  };
  using iterator = const_iterator;
  using value_type = Id;

  IdSet() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(Id id) const {
    if (size_ == 0) return false;
    const size_t mask = slots_.size() - 1;
    for (size_t i = home(id);; i = (i + 1) & mask) {
      if (slots_[i] == id) return true;
      if (slots_[i] == kEmpty) return false;
    }
  }
  size_t count(Id id) const { return contains(id) ? 1 : 0; }

  /// Returns true when the id was not present.
  bool insert(Id id) {
    if (id == kEmpty) throw std::invalid_argument("IdSet: reserved id");
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      grow(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    const size_t mask = slots_.size() - 1;
    for (size_t i = home(id);; i = (i + 1) & mask) {
      if (slots_[i] == id) return false;
      if (slots_[i] == kEmpty) {
        slots_[i] = id;
        ++size_;
        return true;
      }
    }
  }

  /// Returns true when the id was present. Backward-shift deletion keeps
  /// probe chains tombstone-free.
  bool erase(Id id) {
    if (size_ == 0) return false;
    const size_t mask = slots_.size() - 1;
    size_t i = home(id);
    while (slots_[i] != id) {
      if (slots_[i] == kEmpty) return false;
      i = (i + 1) & mask;
    }
    size_t hole = i;
    for (size_t j = (hole + 1) & mask; slots_[j] != kEmpty; j = (j + 1) & mask) {
      // The element at j may fill the hole iff its home position lies at or
      // before the hole along the probe path (cyclic distance check).
      const size_t h = home(slots_[j]);
      if (((j - h) & mask) >= ((j - hole) & mask)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = kEmpty;
    --size_;
    return true;
  }

  void clear() {
    slots_.assign(slots_.size(), kEmpty);
    size_ = 0;
  }

  /// Pre-sizes the table so `n` elements fit without rehashing.
  void reserve(size_t n) {
    size_t want = kMinSlots;
    while (n * 4 > want * 3) want *= 2;
    if (want > slots_.size()) grow(want);
  }

  const_iterator begin() const {
    return {slots_.data(), slots_.data() + slots_.size()};
  }
  const_iterator end() const {
    return {slots_.data() + slots_.size(), slots_.data() + slots_.size()};
  }

  bool operator==(const IdSet& o) const {
    if (size_ != o.size_) return false;
    for (Id id : *this) {
      if (!o.contains(id)) return false;
    }
    return true;
  }
  bool operator!=(const IdSet& o) const { return !(*this == o); }

 private:
  static constexpr size_t kMinSlots = 8;

  size_t home(Id id) const { return (id * kMix) >> shift_; }

  void grow(size_t new_slots) {
    std::vector<Id> old = std::move(slots_);
    slots_.assign(new_slots, kEmpty);
    shift_ = 64;
    for (size_t s = new_slots; s > 1; s >>= 1) --shift_;
    const size_t mask = new_slots - 1;
    for (Id id : old) {
      if (id == kEmpty) continue;
      size_t i = home(id);
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = id;
    }
  }

  std::vector<Id> slots_;
  size_t size_ = 0;
  unsigned shift_ = 64;  // 64 - log2(slots_.size()); home() of an empty table unused
};

}  // namespace ruletris::dag
