// Exact incremental minimum-DAG maintenance over an ordered rule list.
//
// Maintains, under rule inserts and removals, the minimum dependency DAG of
// a totally ordered rule list (matched-first order): edge u -> v (v earlier)
// iff overlap(u, v) is not entirely covered by the rules strictly between
// them. Each update recomputes direct-dependency only for the pairs whose
// "between" set changed, found through an overlap index, so the graph equals
// the brute-force minimum DAG after every operation at incremental cost.
//
// This powers two places:
//  * leaf tables (extracting DAGs from dependency-unaware applications,
//    Sec. III-B), and
//  * the visible level of composed tables. The paper derives the visible
//    DAG by projecting member-level (cross-product / mega-resolution) edges
//    onto key-vertex representatives; we found that projection unsound when
//    ordering chains pass through *obscured* equal-match members (the
//    nested key vertices of Sec. IV-B1), so the visible DAG is instead
//    maintained exactly here. See DESIGN.md "Deviations".
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/rule_index.h"
#include "flowspace/ternary.h"

namespace ruletris::dag {

using flowspace::RuleId;
using flowspace::TernaryMatch;

class MinDagMaintainer {
 public:
  /// `before(existing, incoming)`: true iff the already-present rule
  /// `existing` is matched before the rule being inserted. Only ever called
  /// with the incoming id as second argument, so tie-breaking "existing
  /// first" is expressible for priority-ordered leaves.
  using BeforeFn = std::function<bool(RuleId existing, RuleId incoming)>;

  explicit MinDagMaintainer(BeforeFn before);

  size_t size() const { return order_.size(); }
  bool contains(RuleId id) const { return ranks_.count(id) != 0; }
  const DependencyGraph& graph() const { return graph_; }
  const TernaryMatch& match(RuleId id) const { return matches_.at(id); }

  /// Rules overlapping `m`, in no particular order.
  std::vector<RuleId> overlapping(const TernaryMatch& m) const {
    return index_.find_overlapping(m);
  }

  /// Rule ids in matched-first order.
  const std::vector<RuleId>& order() const { return order_; }

  /// Inserts at the position determined by the comparator; returns the
  /// exact delta (one added vertex plus edge additions/removals).
  DagDelta insert(RuleId id, TernaryMatch match);

  /// Removes; the delta contains the removed vertex, its (implied) removed
  /// edges, and the verified patch edges between former neighbours.
  DagDelta remove(RuleId id);

  /// Replaces all content with `rules` already in matched-first order and
  /// builds the DAG pairwise (cheaper than n incremental inserts).
  void bulk_load(const std::vector<std::pair<RuleId, TernaryMatch>>& rules);

 private:
  /// Direct-dependency test for (earlier `hi`, later `lo`): overlap not
  /// covered by in-between rules (prefiltered through the overlap index).
  bool is_direct(RuleId hi, RuleId lo) const;

  uint64_t rank(RuleId id) const { return ranks_.at(id); }
  void renumber();

  static constexpr uint64_t kRankGap = uint64_t{1} << 20;

  BeforeFn before_;
  std::vector<RuleId> order_;                    // matched-first
  std::unordered_map<RuleId, uint64_t> ranks_;   // sparse, order-consistent
  std::unordered_map<RuleId, TernaryMatch> matches_;
  flowspace::RuleIndex index_;
  DependencyGraph graph_;

  // Reusable cover-test arenas: is_direct sits on every update path, so its
  // between-set and fragment buffers must not reallocate at steady state.
  mutable std::vector<TernaryMatch> between_scratch_;
  mutable flowspace::CoverScratch cover_scratch_;
};

}  // namespace ruletris::dag
