#include "dag/dependency_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <stdexcept>

#include "util/strfmt.h"

namespace ruletris::dag {

namespace {
const IdSet kEmptySet;
}

bool DependencyGraph::has_edge(RuleId u, RuleId v) const {
  auto it = nodes_.find(u);
  return it != nodes_.end() && it->second.out.count(v) != 0;
}

bool DependencyGraph::add_vertex(RuleId v) {
  return nodes_.try_emplace(v).second;
}

void DependencyGraph::bulk_load_indexed(
    const std::vector<RuleId>& vertices,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  if (!nodes_.empty()) {
    throw std::invalid_argument("DependencyGraph: bulk_load needs an empty graph");
  }
  const size_t n = vertices.size();
  nodes_.reserve(n);
  std::vector<Node*> at(n);
  for (size_t i = 0; i < n; ++i) {
    auto [it, fresh] = nodes_.try_emplace(vertices[i]);
    if (!fresh) throw std::invalid_argument("DependencyGraph: duplicate vertex");
    at[i] = &it->second;
  }
  std::vector<uint32_t> out_deg(n, 0);
  std::vector<uint32_t> in_deg(n, 0);
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n) {
      throw std::invalid_argument("DependencyGraph: edge index out of range");
    }
    if (u == v) throw std::invalid_argument("DependencyGraph: self edge");
    ++out_deg[u];
    ++in_deg[v];
  }
  for (size_t i = 0; i < n; ++i) {
    if (out_deg[i] != 0) at[i]->out.reserve(out_deg[i]);
    if (in_deg[i] != 0) at[i]->in.reserve(in_deg[i]);
  }
  for (const auto& [u, v] : edges) {
    if (at[u]->out.insert(vertices[v])) {
      at[v]->in.insert(vertices[u]);
      ++edge_count_;
    }
  }
}

void DependencyGraph::remove_vertex(RuleId v) {
  auto it = nodes_.find(v);
  if (it == nodes_.end()) return;
  for (RuleId succ : it->second.out) {
    nodes_[succ].in.erase(v);
    --edge_count_;
  }
  for (RuleId pred : it->second.in) {
    nodes_[pred].out.erase(v);
    --edge_count_;
  }
  nodes_.erase(it);
}

DependencyGraph::EdgeAdd DependencyGraph::add_edge(RuleId u, RuleId v) {
  if (u == v) throw std::invalid_argument("DependencyGraph: self edge");
  EdgeAdd result;
  result.created_u = nodes_.try_emplace(u).second;
  result.created_v = nodes_.try_emplace(v).second;
  if (nodes_[u].out.insert(v)) {
    nodes_[v].in.insert(u);
    ++edge_count_;
    result.added = true;
  }
  return result;
}

bool DependencyGraph::remove_edge(RuleId u, RuleId v) {
  auto it = nodes_.find(u);
  if (it == nodes_.end()) return false;
  if (it->second.out.erase(v)) {
    nodes_[v].in.erase(u);
    --edge_count_;
    return true;
  }
  return false;
}

const DependencyGraph::Node& DependencyGraph::node(RuleId v) const {
  auto it = nodes_.find(v);
  if (it == nodes_.end()) throw std::out_of_range("DependencyGraph: unknown vertex");
  return it->second;
}

const IdSet& DependencyGraph::successors(RuleId u) const {
  auto it = nodes_.find(u);
  return it == nodes_.end() ? kEmptySet : it->second.out;
}

const IdSet& DependencyGraph::predecessors(RuleId u) const {
  auto it = nodes_.find(u);
  return it == nodes_.end() ? kEmptySet : it->second.in;
}

std::vector<RuleId> DependencyGraph::vertices() const {
  std::vector<RuleId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) {
    (void)n;
    out.push_back(id);
  }
  return out;
}

std::vector<RuleId> DependencyGraph::sources() const {
  std::vector<RuleId> out;
  for (const auto& [id, n] : nodes_) {
    if (n.out.empty()) out.push_back(id);
  }
  return out;
}

std::vector<RuleId> DependencyGraph::sinks() const {
  std::vector<RuleId> out;
  for (const auto& [id, n] : nodes_) {
    if (n.in.empty()) out.push_back(id);
  }
  return out;
}

std::vector<RuleId> DependencyGraph::topo_order_high_to_low() const {
  // Kahn's algorithm peeling vertices with no unprocessed *successors*:
  // a vertex may be emitted once everything it must sit below is emitted.
  std::unordered_map<RuleId, size_t> remaining_out;
  std::deque<RuleId> ready;
  for (const auto& [id, n] : nodes_) {
    remaining_out[id] = n.out.size();
    if (n.out.empty()) ready.push_back(id);
  }
  std::vector<RuleId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const RuleId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (RuleId pred : node(v).in) {
      if (--remaining_out[pred] == 0) ready.push_back(pred);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::runtime_error("DependencyGraph: cycle detected");
  }
  // A vertex with no (unprocessed) successors depends on nothing left, so it
  // may be matched first: the peel order is already matched-first.
  return order;
}

bool DependencyGraph::reaches(RuleId u, RuleId v) const {
  if (!has_vertex(u) || !has_vertex(v)) return false;
  std::unordered_set<RuleId> seen{u};
  std::deque<RuleId> queue{u};
  while (!queue.empty()) {
    const RuleId cur = queue.front();
    queue.pop_front();
    if (cur == v) return true;
    for (RuleId next : node(cur).out) {
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

bool DependencyGraph::would_create_cycle(RuleId u, RuleId v) const {
  // Adding u -> v creates a cycle iff u is already reachable from v.
  return reaches(v, u);
}

void DependencyGraph::apply(const DagDelta& delta) {
  for (const auto& [u, v] : delta.removed_edges) remove_edge(u, v);
  for (RuleId v : delta.removed_vertices) remove_vertex(v);
  for (RuleId v : delta.added_vertices) add_vertex(v);
  for (const auto& [u, v] : delta.added_edges) add_edge(u, v);
}

std::vector<std::pair<RuleId, RuleId>> DependencyGraph::edges() const {
  std::vector<std::pair<RuleId, RuleId>> out;
  out.reserve(edge_count_);
  for (const auto& [id, n] : nodes_) {
    for (RuleId succ : n.out) out.emplace_back(id, succ);
  }
  return out;
}

bool DependencyGraph::operator==(const DependencyGraph& other) const {
  if (nodes_.size() != other.nodes_.size() || edge_count_ != other.edge_count_) {
    return false;
  }
  for (const auto& [id, n] : nodes_) {
    auto it = other.nodes_.find(id);
    if (it == other.nodes_.end() || it->second.out != n.out) return false;
  }
  return true;
}

std::string DependencyGraph::to_string() const {
  std::string out = util::strfmt("DAG(%zu vertices, %zu edges)\n", nodes_.size(), edge_count_);
  auto ids = vertices();
  std::sort(ids.begin(), ids.end());
  for (RuleId id : ids) {
    std::vector<RuleId> succ(node(id).out.begin(), node(id).out.end());
    std::sort(succ.begin(), succ.end());
    out += util::strfmt("  %llu ->", static_cast<unsigned long long>(id));
    for (RuleId s : succ) out += util::strfmt(" %llu", static_cast<unsigned long long>(s));
    out += "\n";
  }
  return out;
}

}  // namespace ruletris::dag
