#include "dag/builder.h"

#include <unordered_map>

namespace ruletris::dag {

using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;

DependencyGraph build_min_dag(const FlowTable& table) {
  DependencyGraph graph;
  const auto& rules = table.rules();  // descending priority == match order
  for (const Rule& r : rules) graph.add_vertex(r.id);

  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = 0; j + 1 <= i; ++j) {
      // Candidate edge rules[i] -> rules[j] (j is matched first).
      auto overlap = rules[i].match.intersect(rules[j].match);
      if (!overlap) continue;
      // The dependency is direct iff part of the overlap survives all rules
      // strictly between j and i.
      std::vector<TernaryMatch> between;
      between.reserve(i - j);
      for (size_t k = j + 1; k < i; ++k) between.push_back(rules[k].match);
      if (!flowspace::is_covered_by(*overlap, between)) {
        graph.add_edge(rules[i].id, rules[j].id);
      }
    }
  }
  return graph;
}

bool order_respects_dag(const std::vector<Rule>& rules, const DependencyGraph& graph) {
  std::unordered_map<RuleId, size_t> pos;
  pos.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) pos[rules[i].id] = i;
  for (const auto& [u, v] : graph.edges()) {
    auto pu = pos.find(u);
    auto pv = pos.find(v);
    if (pu == pos.end() || pv == pos.end()) return false;
    if (pv->second >= pu->second) return false;  // v must be matched first
  }
  return true;
}

}  // namespace ruletris::dag
