#include "dag/builder.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "flowspace/rule_index.h"
#include "util/thread_pool.h"

namespace ruletris::dag {

using flowspace::CoverResult;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::RuleIndex;
using flowspace::TernaryMatch;

namespace {

size_t g_default_build_threads = 0;

}  // namespace

void set_default_build_threads(size_t n) { g_default_build_threads = n; }
size_t default_build_threads() { return g_default_build_threads; }

void row_direct_dependencies(const TernaryMatch& m,
                             const std::vector<const TernaryMatch*>& cands,
                             const MinDagBuildOptions& opts,
                             MinDagRowScratch& scratch,
                             std::vector<size_t>& out) {
  out.clear();
  if (cands.empty()) return;

  // Residue walk, candidates in descending match order: before candidate c
  // is tested, `residue` equals m minus every rule between c and m's row
  // (restricted to rules overlapping m — the others subtract nothing). The
  // direct-dependency test is then a plain overlap scan, and one subtraction
  // chain serves the entire row instead of one cover test per pair.
  auto& residue = scratch.residue_;
  auto& next = scratch.next_;
  residue.clear();
  residue.push_back(m);
  for (size_t c = cands.size(); c-- > 0;) {
    const TernaryMatch& cand = *cands[c];
    bool hit = false;
    for (const TernaryMatch& f : residue) {
      if (f.overlaps(cand)) {
        hit = true;
        break;
      }
    }
    if (!hit) continue;
    out.push_back(c);
    next.clear();
    for (const TernaryMatch& f : residue) {
      if (f.overlaps(cand)) {
        f.subtract_into(cand, next);  // appends nothing when cand subsumes f
      } else {
        next.push_back(f);
      }
    }
    residue.swap(next);
    if (residue.empty()) return;

    if (residue.size() > opts.residue_soft_limit && c > 0) {
      // Broad rules (default routes) fragment against thousands of specific
      // rules above them; per-pair cover tests stay cheap there because each
      // pair's between-set is small after overlap filtering. The between-set
      // is pulled from an index over the later candidates — grown as the
      // walk descends — so a row with k candidates costs k bucket queries,
      // not k^2 pairwise overlap tests.
      auto& later = scratch.later_;
      later.clear();
      for (size_t k = c; k < cands.size(); ++k) {
        later.insert(static_cast<RuleId>(k), *cands[k]);
      }
      for (size_t c2 = c; c2-- > 0;) {
        const auto overlap = m.intersect(*cands[c2]);
        if (!overlap) continue;  // candidates overlap m by contract
        auto& keyed = scratch.between_keyed_;
        keyed.clear();
        later.for_each_overlapping(
            *overlap, [&](RuleId k, const TernaryMatch& match) {
              keyed.emplace_back(k, &match);
            });
        // Most-general covers first: they erase whole fragment families at
        // once, keeping the subtraction shallow. Ties break on candidate
        // position so the cover order — and with it any overflow verdict —
        // is identical regardless of index iteration order (serial and
        // parallel builds must stay bit-identical).
        std::sort(keyed.begin(), keyed.end(),
                  [](const auto& a, const auto& b) {
                    const uint32_t ba = a.second->specified_bits();
                    const uint32_t bb = b.second->specified_bits();
                    if (ba != bb) return ba < bb;
                    return a.first < b.first;
                  });
        auto& between = scratch.between_;
        between.clear();
        for (const auto& [k, match] : keyed) between.push_back(*match);
        const CoverResult r = flowspace::try_cover(
            *overlap, {between.data(), between.size()}, scratch.cover_,
            opts.fragment_limit);
        if (r != CoverResult::kCovered) out.push_back(c2);  // overflow: keep edge
        later.insert(static_cast<RuleId>(c2), *cands[c2]);
      }
      return;
    }
  }
}

namespace {

/// Per-thread working set for the indexed build.
struct RowContext {
  std::vector<size_t> cand_pos;
  std::vector<const TernaryMatch*> cand_matches;
  std::vector<size_t> edges;
  MinDagRowScratch scratch;
};

/// Direct-dependency target positions of row `i`, appended to `targets` in a
/// deterministic order (identical for serial and parallel builds).
void compute_row(const FlowTable& table, const RuleIndex& index, size_t i,
                 const MinDagBuildOptions& opts, RowContext& ctx,
                 std::vector<size_t>& targets) {
  const auto& rules = table.rules();
  ctx.cand_pos.clear();
  index.for_each_overlapping(rules[i].match,
                             [&](RuleId id, const TernaryMatch&) {
                               const size_t p = table.position(id);
                               if (p < i) ctx.cand_pos.push_back(p);
                             });
  std::sort(ctx.cand_pos.begin(), ctx.cand_pos.end());
  ctx.cand_matches.clear();
  for (size_t p : ctx.cand_pos) ctx.cand_matches.push_back(&rules[p].match);
  row_direct_dependencies(rules[i].match, ctx.cand_matches, opts, ctx.scratch,
                          ctx.edges);
  for (size_t e : ctx.edges) targets.push_back(ctx.cand_pos[e]);
}

/// Direct small-table path: the brute-force pair/between structure, but with
/// the arena-backed try_cover kernel and the repository's uniform
/// conservative overflow policy (keep the edge). No index, no residue walk —
/// below kSmallTableDirectCutoff their setup costs more than they save.
DependencyGraph build_direct(const FlowTable& table, const MinDagBuildOptions& opts) {
  DependencyGraph graph;
  const auto& rules = table.rules();
  for (const Rule& r : rules) graph.add_vertex(r.id);

  flowspace::CoverScratch cover;
  std::vector<TernaryMatch> between;
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = 0; j + 1 <= i; ++j) {
      auto overlap = rules[i].match.intersect(rules[j].match);
      if (!overlap) continue;
      between.clear();
      for (size_t k = j + 1; k < i; ++k) {
        if (rules[k].match.overlaps(*overlap)) between.push_back(rules[k].match);
      }
      const CoverResult r = flowspace::try_cover(
          *overlap, {between.data(), between.size()}, cover, opts.fragment_limit);
      if (r != CoverResult::kCovered) {  // overflow keeps a conservative edge
        graph.add_edge(rules[i].id, rules[j].id);
      }
    }
  }
  return graph;
}

DependencyGraph build_indexed(const FlowTable& table, const MinDagBuildOptions& opts) {
  const auto& rules = table.rules();  // descending priority == match order
  const size_t n = rules.size();
  if (uses_direct_path(n, opts)) return build_direct(table, opts);

  DependencyGraph graph;
  for (const Rule& r : rules) graph.add_vertex(r.id);
  if (n < 2) return graph;

  RuleIndex index;
  for (const Rule& r : rules) index.insert(r.id, r.match);

  const bool parallel = opts.n_threads > 1 && n >= opts.parallel_cutoff;
  std::vector<std::vector<size_t>> row_targets(n);
  if (!parallel) {
    RowContext ctx;
    for (size_t i = 1; i < n; ++i) {
      compute_row(table, index, i, opts, ctx, row_targets[i]);
    }
  } else {
    // Rows are independent given the (read-only) table and index: workers
    // claim chunks off an atomic cursor with per-thread arenas, and results
    // land in per-row slots so the merged edge set is order-independent.
    util::ChunkCursor cursor(1, n, util::ChunkCursor::suggest_chunk(n, opts.n_threads));
    util::ThreadPool pool(opts.n_threads);
    util::run_on_workers(pool, [&] {
      return [&] {
        RowContext ctx;
        size_t begin, end;
        while (cursor.next(begin, end)) {
          for (size_t i = begin; i < end; ++i) {
            compute_row(table, index, i, opts, ctx, row_targets[i]);
          }
        }
      };
    });
  }

  for (size_t i = 1; i < n; ++i) {
    for (size_t t : row_targets[i]) graph.add_edge(rules[i].id, rules[t].id);
  }
  return graph;
}

}  // namespace

bool uses_direct_path(size_t table_size, const MinDagBuildOptions& opts) {
  return table_size < opts.direct_cutoff;
}

DependencyGraph build_min_dag(const FlowTable& table) {
  return build_indexed(table, MinDagBuildOptions{});
}

DependencyGraph build_min_dag(const FlowTable& table, const MinDagBuildOptions& opts) {
  MinDagBuildOptions serial = opts;
  serial.n_threads = 1;
  return build_indexed(table, serial);
}

DependencyGraph build_min_dag_parallel(const FlowTable& table, size_t n_threads) {
  MinDagBuildOptions opts;
  opts.n_threads = n_threads;
  return build_indexed(table, opts);
}

DependencyGraph build_min_dag_parallel(const FlowTable& table,
                                       const MinDagBuildOptions& opts) {
  return build_indexed(table, opts);
}

DependencyGraph build_min_dag_brute(const FlowTable& table) {
  DependencyGraph graph;
  const auto& rules = table.rules();
  for (const Rule& r : rules) graph.add_vertex(r.id);

  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = 0; j + 1 <= i; ++j) {
      // Candidate edge rules[i] -> rules[j] (j is matched first).
      auto overlap = rules[i].match.intersect(rules[j].match);
      if (!overlap) continue;
      // The dependency is direct iff part of the overlap survives all rules
      // strictly between j and i.
      std::vector<TernaryMatch> between;
      between.reserve(i - j);
      for (size_t k = j + 1; k < i; ++k) between.push_back(rules[k].match);
      if (!flowspace::is_covered_by(*overlap, between)) {
        graph.add_edge(rules[i].id, rules[j].id);
      }
    }
  }
  return graph;
}

bool order_respects_dag(const std::vector<Rule>& rules, const DependencyGraph& graph) {
  std::unordered_map<RuleId, size_t> pos;
  pos.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) pos[rules[i].id] = i;
  for (const auto& [u, v] : graph.edges()) {
    auto pu = pos.find(u);
    auto pv = pos.find(v);
    if (pu == pos.end() || pv == pos.end()) return false;
    if (pv->second >= pu->second) return false;  // v must be matched first
  }
  return true;
}

}  // namespace ruletris::dag
