#include "dag/min_dag_maintainer.h"

#include <algorithm>
#include <stdexcept>

#include "dag/builder.h"

namespace ruletris::dag {

MinDagMaintainer::MinDagMaintainer(BeforeFn before) : before_(std::move(before)) {}

bool MinDagMaintainer::is_direct(RuleId hi, RuleId lo) const {
  auto overlap = matches_.at(hi).intersect(matches_.at(lo));
  if (!overlap) return false;
  const uint64_t hi_rank = rank(hi);
  const uint64_t lo_rank = rank(lo);
  // Only rules overlapping the overlap region can cover any of it.
  auto& between = between_scratch_;
  between.clear();
  index_.for_each_overlapping(
      *overlap, [&](RuleId c, const TernaryMatch& m) {
        if (c == hi || c == lo) return;
        const uint64_t r = rank(c);
        if (r > hi_rank && r < lo_rank) between.push_back(m);
      });
  // Most-general covers first: they erase whole fragment families at once,
  // which keeps the subtraction from fragmenting on wide tables.
  std::sort(between.begin(), between.end(),
            [](const TernaryMatch& a, const TernaryMatch& b) {
              return a.specified_bits() < b.specified_bits();
            });
  switch (flowspace::try_cover(*overlap, {between.data(), between.size()},
                               cover_scratch_)) {
    case flowspace::CoverResult::kCovered: return false;
    case flowspace::CoverResult::kNotCovered: return true;
    case flowspace::CoverResult::kOverflow: break;
  }
  // Fragment blow-up: treat the pair as direct. A spurious edge is a
  // harmless (consistent) extra constraint; a missing edge would not be.
  return true;
}

void MinDagMaintainer::renumber() {
  for (size_t i = 0; i < order_.size(); ++i) {
    ranks_[order_[i]] = (static_cast<uint64_t>(i) + 1) * kRankGap;
  }
}

DagDelta MinDagMaintainer::insert(RuleId id, TernaryMatch match) {
  if (contains(id)) throw std::invalid_argument("MinDagMaintainer: duplicate id");
  DagDelta delta;

  // Position: after every existing rule the comparator places before `id`.
  const auto it = std::partition_point(
      order_.begin(), order_.end(),
      [this, id](RuleId existing) { return before_(existing, id); });
  const size_t idx = static_cast<size_t>(it - order_.begin());

  // Sparse rank between the neighbours; renumber when the gap is exhausted.
  const uint64_t lo_rank = idx > 0 ? rank(order_[idx - 1]) : 0;
  uint64_t new_rank;
  if (idx == order_.size()) {
    new_rank = lo_rank + kRankGap;
  } else {
    const uint64_t hi_rank = rank(order_[idx]);
    new_rank = lo_rank + (hi_rank - lo_rank) / 2;
    if (new_rank == lo_rank) {
      order_.insert(order_.begin() + static_cast<ptrdiff_t>(idx), id);
      ranks_[id] = 0;
      renumber();
      new_rank = rank(id);
    }
  }
  if (!contains(id)) {
    order_.insert(order_.begin() + static_cast<ptrdiff_t>(idx), id);
    ranks_[id] = new_rank;
  }
  matches_.emplace(id, match);
  index_.insert(id, match);
  graph_.add_vertex(id);
  delta.added_vertices.push_back(id);

  const uint64_t my_rank = rank(id);
  const std::vector<RuleId> candidates = index_.find_overlapping(match);

  // New direct dependencies incident to `id`.
  for (RuleId c : candidates) {
    if (c == id) continue;
    if (rank(c) < my_rank) {
      if (is_direct(c, id)) {
        graph_.add_edge(id, c);
        delta.added_edges.emplace_back(id, c);
      }
    } else {
      if (is_direct(id, c)) {
        graph_.add_edge(c, id);
        delta.added_edges.emplace_back(c, id);
      }
    }
  }

  // Existing edges that `id` now covers: pairs straddling it that both
  // overlap it.
  for (RuleId u : candidates) {
    if (u == id || rank(u) < my_rank) continue;
    std::vector<RuleId> succs(graph_.successors(u).begin(), graph_.successors(u).end());
    for (RuleId s : succs) {
      if (s == id || rank(s) > my_rank) continue;
      if (!match.overlaps(matches_.at(s))) continue;
      if (!is_direct(s, u)) {
        graph_.remove_edge(u, s);
        delta.removed_edges.emplace_back(u, s);
      }
    }
  }
  return delta;
}

DagDelta MinDagMaintainer::remove(RuleId id) {
  DagDelta delta;
  auto mit = matches_.find(id);
  if (mit == matches_.end()) return delta;
  const TernaryMatch match = mit->second;

  std::vector<RuleId> above, below;
  for (RuleId c : index_.find_overlapping(match)) {
    if (c == id) continue;
    (rank(c) < rank(id) ? above : below).push_back(c);
  }

  for (RuleId s : graph_.successors(id)) delta.removed_edges.emplace_back(id, s);
  for (RuleId p : graph_.predecessors(id)) delta.removed_edges.emplace_back(p, id);
  graph_.remove_vertex(id);
  delta.removed_vertices.push_back(id);

  order_.erase(std::find(order_.begin(), order_.end(), id));
  ranks_.erase(id);
  matches_.erase(mit);
  index_.erase(id);

  // Pairs the removed rule used to cover may become direct.
  for (RuleId u : below) {
    for (RuleId s : above) {
      if (graph_.has_edge(u, s)) continue;
      if (!matches_.at(u).overlaps(matches_.at(s))) continue;
      if (is_direct(s, u)) {
        graph_.add_edge(u, s);
        delta.added_edges.emplace_back(u, s);
      }
    }
  }
  return delta;
}

void MinDagMaintainer::bulk_load(
    const std::vector<std::pair<RuleId, TernaryMatch>>& rules) {
  order_.clear();
  ranks_.clear();
  matches_.clear();
  index_.clear();
  graph_ = DependencyGraph();

  order_.reserve(rules.size());
  for (const auto& [id, match] : rules) {
    order_.push_back(id);
    matches_.emplace(id, match);
    index_.insert(id, match);
    graph_.add_vertex(id);
  }
  renumber();

  // Per-row residue walk through the shared builder kernel: one subtraction
  // chain per rule (index-pruned candidates) instead of one cover test per
  // overlapping pair.
  std::unordered_map<RuleId, size_t> pos;
  pos.reserve(order_.size());
  std::vector<const TernaryMatch*> ordered_matches;
  ordered_matches.reserve(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    pos[order_[i]] = i;
    ordered_matches.push_back(&matches_.at(order_[i]));
  }
  const MinDagBuildOptions opts;
  MinDagRowScratch scratch;
  std::vector<size_t> cand_pos;
  std::vector<const TernaryMatch*> cands;
  std::vector<size_t> edges;
  for (size_t i = 1; i < order_.size(); ++i) {
    cand_pos.clear();
    index_.for_each_overlapping(*ordered_matches[i],
                                [&](RuleId id, const TernaryMatch&) {
                                  const size_t p = pos.at(id);
                                  if (p < i) cand_pos.push_back(p);
                                });
    std::sort(cand_pos.begin(), cand_pos.end());
    cands.clear();
    for (size_t p : cand_pos) cands.push_back(ordered_matches[p]);
    row_direct_dependencies(*ordered_matches[i], cands, opts, scratch, edges);
    for (size_t e : edges) graph_.add_edge(order_[i], order_[cand_pos[e]]);
  }
}

}  // namespace ruletris::dag
