#include "dag/min_dag_maintainer.h"

#include <algorithm>
#include <stdexcept>

namespace ruletris::dag {

MinDagMaintainer::MinDagMaintainer(BeforeFn before) : before_(std::move(before)) {}

bool MinDagMaintainer::is_direct(RuleId hi, RuleId lo) const {
  auto overlap = matches_.at(hi).intersect(matches_.at(lo));
  if (!overlap) return false;
  const uint64_t hi_rank = rank(hi);
  const uint64_t lo_rank = rank(lo);
  // Only rules overlapping the overlap region can cover any of it.
  std::vector<TernaryMatch> between;
  for (RuleId c : index_.find_overlapping(*overlap)) {
    if (c == hi || c == lo) continue;
    const uint64_t r = rank(c);
    if (r > hi_rank && r < lo_rank) between.push_back(matches_.at(c));
  }
  // Most-general covers first: they erase whole fragment families at once,
  // which keeps the subtraction from fragmenting on wide tables.
  std::sort(between.begin(), between.end(),
            [](const TernaryMatch& a, const TernaryMatch& b) {
              return a.specified_bits() < b.specified_bits();
            });
  try {
    return !flowspace::is_covered_by(*overlap, between, 1 << 17);
  } catch (const std::runtime_error&) {
    // Fragment blow-up: treat the pair as direct. A spurious edge is a
    // harmless (consistent) extra constraint; a missing edge would not be.
    return true;
  }
}

void MinDagMaintainer::renumber() {
  for (size_t i = 0; i < order_.size(); ++i) {
    ranks_[order_[i]] = (static_cast<uint64_t>(i) + 1) * kRankGap;
  }
}

DagDelta MinDagMaintainer::insert(RuleId id, TernaryMatch match) {
  if (contains(id)) throw std::invalid_argument("MinDagMaintainer: duplicate id");
  DagDelta delta;

  // Position: after every existing rule the comparator places before `id`.
  const auto it = std::partition_point(
      order_.begin(), order_.end(),
      [this, id](RuleId existing) { return before_(existing, id); });
  const size_t idx = static_cast<size_t>(it - order_.begin());

  // Sparse rank between the neighbours; renumber when the gap is exhausted.
  const uint64_t lo_rank = idx > 0 ? rank(order_[idx - 1]) : 0;
  uint64_t new_rank;
  if (idx == order_.size()) {
    new_rank = lo_rank + kRankGap;
  } else {
    const uint64_t hi_rank = rank(order_[idx]);
    new_rank = lo_rank + (hi_rank - lo_rank) / 2;
    if (new_rank == lo_rank) {
      order_.insert(order_.begin() + static_cast<ptrdiff_t>(idx), id);
      ranks_[id] = 0;
      renumber();
      new_rank = rank(id);
    }
  }
  if (!contains(id)) {
    order_.insert(order_.begin() + static_cast<ptrdiff_t>(idx), id);
    ranks_[id] = new_rank;
  }
  matches_.emplace(id, match);
  index_.insert(id, match);
  graph_.add_vertex(id);
  delta.added_vertices.push_back(id);

  const uint64_t my_rank = rank(id);
  const std::vector<RuleId> candidates = index_.find_overlapping(match);

  // New direct dependencies incident to `id`.
  for (RuleId c : candidates) {
    if (c == id) continue;
    if (rank(c) < my_rank) {
      if (is_direct(c, id)) {
        graph_.add_edge(id, c);
        delta.added_edges.emplace_back(id, c);
      }
    } else {
      if (is_direct(id, c)) {
        graph_.add_edge(c, id);
        delta.added_edges.emplace_back(c, id);
      }
    }
  }

  // Existing edges that `id` now covers: pairs straddling it that both
  // overlap it.
  for (RuleId u : candidates) {
    if (u == id || rank(u) < my_rank) continue;
    std::vector<RuleId> succs(graph_.successors(u).begin(), graph_.successors(u).end());
    for (RuleId s : succs) {
      if (s == id || rank(s) > my_rank) continue;
      if (!match.overlaps(matches_.at(s))) continue;
      if (!is_direct(s, u)) {
        graph_.remove_edge(u, s);
        delta.removed_edges.emplace_back(u, s);
      }
    }
  }
  return delta;
}

DagDelta MinDagMaintainer::remove(RuleId id) {
  DagDelta delta;
  auto mit = matches_.find(id);
  if (mit == matches_.end()) return delta;
  const TernaryMatch match = mit->second;

  std::vector<RuleId> above, below;
  for (RuleId c : index_.find_overlapping(match)) {
    if (c == id) continue;
    (rank(c) < rank(id) ? above : below).push_back(c);
  }

  for (RuleId s : graph_.successors(id)) delta.removed_edges.emplace_back(id, s);
  for (RuleId p : graph_.predecessors(id)) delta.removed_edges.emplace_back(p, id);
  graph_.remove_vertex(id);
  delta.removed_vertices.push_back(id);

  order_.erase(std::find(order_.begin(), order_.end(), id));
  ranks_.erase(id);
  matches_.erase(mit);
  index_.erase(id);

  // Pairs the removed rule used to cover may become direct.
  for (RuleId u : below) {
    for (RuleId s : above) {
      if (graph_.has_edge(u, s)) continue;
      if (!matches_.at(u).overlaps(matches_.at(s))) continue;
      if (is_direct(s, u)) {
        graph_.add_edge(u, s);
        delta.added_edges.emplace_back(u, s);
      }
    }
  }
  return delta;
}

void MinDagMaintainer::bulk_load(
    const std::vector<std::pair<RuleId, TernaryMatch>>& rules) {
  order_.clear();
  ranks_.clear();
  matches_.clear();
  index_.clear();
  graph_ = DependencyGraph();

  order_.reserve(rules.size());
  for (const auto& [id, match] : rules) {
    order_.push_back(id);
    matches_.emplace(id, match);
    index_.insert(id, match);
    graph_.add_vertex(id);
  }
  renumber();

  // Pairwise with index prefilter: for each rule, only earlier overlapping
  // rules are dependency candidates.
  for (RuleId lo : order_) {
    const uint64_t lo_rank = rank(lo);
    for (RuleId hi : index_.find_overlapping(matches_.at(lo))) {
      if (hi == lo || rank(hi) >= lo_rank) continue;
      if (is_direct(hi, lo)) graph_.add_edge(lo, hi);
    }
  }
}

}  // namespace ruletris::dag
