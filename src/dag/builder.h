// Minimum-DAG extraction from a prioritized flow table.
//
// This is the operation the paper calls "prohibitively time consuming" for
// the update path (Sec. IV). RuleTris still needs it in two places:
//  * bootstrapping DAGs for leaf tables populated by dependency-unaware
//    applications (Sec. III-B: "RuleTris can extract the DAGs from the
//    prioritized flow tables"), and
//  * as the correctness oracle for the compositional construction.
//
// Definition of the minimum DAG (CacheFlow-style direct dependency, which
// matches every example in the paper): edge u -> v, with v earlier in match
// order, exists iff some packet matches both u and v and is not matched by
// any rule strictly between them.
//
// Three implementations share one per-row kernel:
//  * build_min_dag_brute — the literal O(n^3) all-pairs definition, kept as
//    the oracle and as the bench baseline;
//  * build_min_dag — indexed: each rule only tests the rules it can actually
//    overlap (RuleIndex candidate pruning) and the per-row residue walk
//    reuses arena buffers, so the hot loop is allocation-free;
//  * build_min_dag_parallel — rows are independent given the table, so they
//    are sharded across a thread pool with per-thread arenas. The edge set
//    is merged in row order and is bit-identical to the serial build.
//
// Fragment-limit policy (see flowspace::kDefaultFragmentLimit): when a cover
// test overflows its fragment budget, the builder keeps a conservative edge.
// A spurious edge is a harmless extra ordering constraint; a missing edge
// would be unsound. (The pre-arena builder threw instead; the policy is now
// explicit and uniform with MinDagMaintainer.)
#pragma once

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"
#include "flowspace/rule_index.h"
#include "flowspace/ternary.h"

namespace ruletris::dag {

/// Below this table size the direct per-pair build beats the indexed one:
/// constructing the RuleIndex and walking residues costs more than the
/// handful of pair tests it would prune (the checked-in extraction bench
/// showed the indexed build ~3.5x *slower* than brute force at 250 rules).
/// The crossover sits between 250 and 500 rules on the router profile.
inline constexpr size_t kSmallTableDirectCutoff = 384;

/// Tuning knobs for the indexed builder. Defaults are right for every
/// workload in the repository; tests lower the limits to exercise the
/// fallback paths.
struct MinDagBuildOptions {
  /// Fragment budget per cover test; overflow keeps a conservative edge.
  size_t fragment_limit = flowspace::kDefaultFragmentLimit;
  /// When a row's residue fragments past this, the row switches from the
  /// residue walk to per-pair cover tests (broad rules like default routes
  /// fragment against thousands of specific rules; per-pair stays cheap).
  size_t residue_soft_limit = 2048;
  /// Worker threads for build_min_dag_parallel; <= 1 builds serially.
  size_t n_threads = 1;
  /// Tables smaller than this build serially even when n_threads > 1.
  size_t parallel_cutoff = 256;
  /// Tables smaller than this skip the index entirely and use the direct
  /// per-pair path (same edges, same conservative overflow policy — applied
  /// before the thread check, so serial and parallel builds stay
  /// bit-identical below the cutoff). 0 disables the shortcut.
  size_t direct_cutoff = kSmallTableDirectCutoff;
};

/// Reusable per-row scratch: residue fragment arena, per-pair cover arena,
/// and candidate storage. One instance per thread.
class MinDagRowScratch {
 public:
  MinDagRowScratch() = default;

 private:
  friend void row_direct_dependencies(const flowspace::TernaryMatch& m,
                                      const std::vector<const flowspace::TernaryMatch*>& cands,
                                      const MinDagBuildOptions& opts,
                                      MinDagRowScratch& scratch,
                                      std::vector<size_t>& out);
  std::vector<flowspace::TernaryMatch> residue_;
  std::vector<flowspace::TernaryMatch> next_;
  std::vector<flowspace::TernaryMatch> between_;
  std::vector<std::pair<flowspace::RuleId, const flowspace::TernaryMatch*>>
      between_keyed_;
  flowspace::CoverScratch cover_;
  // Fallback-path index over later candidates, so each pair's between-set is
  // a bucket query instead of a scan over every remaining candidate (broad
  // rows otherwise cost O(candidates^2) overlap tests).
  flowspace::RuleIndex later_;
};

/// Per-row kernel: computes the direct dependencies of a rule with match `m`
/// on the rules above it. `cands` holds the matches of the candidate rules
/// in match order (ascending position) and must contain every table rule
/// above `m`'s row that overlaps `m` — with an overlap index that is exactly
/// the pruned candidate list, since any rule covering part of an overlap
/// with `m` itself overlaps `m`. Appends to `out` the indexes into `cands`
/// that are direct dependencies, in descending candidate order.
void row_direct_dependencies(const flowspace::TernaryMatch& m,
                             const std::vector<const flowspace::TernaryMatch*>& cands,
                             const MinDagBuildOptions& opts,
                             MinDagRowScratch& scratch,
                             std::vector<size_t>& out);

/// Builds the minimum DAG of `table` with index pruning and arena reuse.
DependencyGraph build_min_dag(const flowspace::FlowTable& table);
DependencyGraph build_min_dag(const flowspace::FlowTable& table,
                              const MinDagBuildOptions& opts);

/// Parallel build: shards rows across `n_threads` workers (per-thread
/// arenas), falling back to the serial path for small tables or n_threads
/// <= 1. The resulting edge set is identical to build_min_dag's.
DependencyGraph build_min_dag_parallel(const flowspace::FlowTable& table,
                                       size_t n_threads);
DependencyGraph build_min_dag_parallel(const flowspace::FlowTable& table,
                                       const MinDagBuildOptions& opts);

/// The literal O(n^2)-pairs brute force with full between-set scans: the
/// correctness oracle and the bench baseline the optimized builders are
/// measured against.
DependencyGraph build_min_dag_brute(const flowspace::FlowTable& table);

/// True iff `build_min_dag(table, opts)` would take the direct small-table
/// path instead of constructing the index (bench/reporting).
bool uses_direct_path(size_t table_size, const MinDagBuildOptions& opts);

/// Process-wide default thread count for bulk DAG extraction entry points
/// that take no explicit count (LeafNode bootstrap). 0 or 1 means serial.
/// Set from tools/bench flags (--dag-threads); not read concurrently with
/// writes.
void set_default_build_threads(size_t n);
size_t default_build_threads();

/// True iff every edge constraint of `graph` is satisfied by the order of
/// `rules` (dependencies appear earlier). Used to validate layouts.
bool order_respects_dag(const std::vector<flowspace::Rule>& rules,
                        const DependencyGraph& graph);

}  // namespace ruletris::dag
