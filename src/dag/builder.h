// Brute-force minimum-DAG extraction from a prioritized flow table.
//
// This is the algorithm the paper calls "prohibitively time consuming" for
// the update path (Sec. IV). RuleTris still needs it in two places:
//  * bootstrapping DAGs for leaf tables populated by dependency-unaware
//    applications (Sec. III-B: "RuleTris can extract the DAGs from the
//    prioritized flow tables"), and
//  * as the correctness oracle for the compositional construction.
//
// Definition of the minimum DAG (CacheFlow-style direct dependency, which
// matches every example in the paper): edge u -> v, with v earlier in match
// order, exists iff some packet matches both u and v and is not matched by
// any rule strictly between them.
#pragma once

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"

namespace ruletris::dag {

/// Builds the minimum DAG of `table`. O(n^2) pair checks, each with an exact
/// flow-space cover test over the rules in between.
DependencyGraph build_min_dag(const flowspace::FlowTable& table);

/// True iff every edge constraint of `graph` is satisfied by the order of
/// `rules` (dependencies appear earlier). Used to validate layouts.
bool order_respects_dag(const std::vector<flowspace::Rule>& rules,
                        const DependencyGraph& graph);

}  // namespace ruletris::dag
