// Composition compiler tests: operator semantics against the from-scratch
// reference, DAG sufficiency and minimality structure, the paper's worked
// examples (Figs. 3-7), and incremental-equals-rebuilt properties.
#include <gtest/gtest.h>

#include <map>

#include "compiler/baseline.h"
#include "dag/builder.h"
#include "compiler/composed_node.h"
#include "compiler/leaf.h"
#include "compiler/ruletris_compiler.h"
#include "test_util.h"

namespace ruletris {
namespace {

using compiler::BaselineCompiler;
using compiler::ComposedNode;
using compiler::compose_from_scratch;
using compiler::LeafNode;
using compiler::OpKind;
using compiler::PolicySpec;
using compiler::RuleTrisCompiler;
using compiler::TableUpdate;
using dag::DependencyGraph;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using testutil::random_dag_linearization;
using testutil::random_rule;
using testutil::semantically_equal;
using util::Rng;

std::vector<Rule> random_table_rules(Rng& rng, int n) {
  std::vector<Rule> rules;
  for (int i = 0; i < n; ++i) {
    rules.push_back(random_rule(rng, 1 + static_cast<int>(rng.next_below(30))));
  }
  return rules;
}

/// Finds the visible rule with the given match; fails the test if absent.
RuleId visible_id_by_match(const compiler::PolicyNode& node, const TernaryMatch& m) {
  for (const Rule& r : node.visible_rules_in_order()) {
    if (r.match == m) return r.id;
  }
  ADD_FAILURE() << "no visible rule with match " << m.to_string();
  return 0;
}

/// Full validation bundle for a composed node against the reference
/// composition of the current member tables.
void expect_composition_valid(compiler::PolicyNode& node, const PolicySpec& spec,
                              const std::map<std::string, FlowTable>& tables, Rng& rng,
                              const char* context) {
  const std::vector<Rule> reference = compose_from_scratch(spec, tables);
  const std::vector<Rule> visible = node.visible_rules_in_order();

  // Same number of distinct matches (both deduplicate equal matches).
  EXPECT_EQ(visible.size(), reference.size()) << context;

  // Canonical order classifies identically.
  EXPECT_TRUE(semantically_equal(visible, reference, rng)) << context;

  // The DAG is acyclic and SUFFICIENT: any layout respecting it classifies
  // like the canonical order.
  ASSERT_NO_THROW(node.visible_graph().topo_order_high_to_low()) << context;
  for (int reorder = 0; reorder < 4; ++reorder) {
    const auto layout = random_dag_linearization(visible, node.visible_graph(), rng);
    ASSERT_EQ(layout.size(), visible.size()) << context;
    EXPECT_TRUE(semantically_equal(layout, reference, rng, 300)) << context;
  }

  // Structural sanity: every DAG edge joins overlapping visible rules.
  for (const auto& [u, v] : node.visible_graph().edges()) {
    ASSERT_TRUE(node.has_visible(u)) << context;
    ASSERT_TRUE(node.has_visible(v)) << context;
    EXPECT_TRUE(node.visible_match(u).overlaps(node.visible_match(v))) << context;
  }

  // Exactness: the visible DAG equals the brute-force minimum DAG of the
  // visible table in canonical order.
  EXPECT_EQ(node.visible_graph(), dag::build_min_dag(FlowTable{visible})) << context;
}

class ComposeOpTest : public ::testing::TestWithParam<OpKind> {};

TEST_P(ComposeOpTest, FullCompileMatchesReferenceOnRandomTables) {
  const OpKind op = GetParam();
  Rng rng(1000 + static_cast<int>(op));
  for (int trial = 0; trial < 12; ++trial) {
    auto t1 = random_table_rules(rng, 4 + static_cast<int>(rng.next_below(8)));
    auto t2 = random_table_rules(rng, 4 + static_cast<int>(rng.next_below(8)));
    std::map<std::string, FlowTable> tables;
    tables.emplace("a", FlowTable{t1});
    tables.emplace("b", FlowTable{t2});

    ComposedNode node{op, std::make_unique<LeafNode>(FlowTable{t1}),
                      std::make_unique<LeafNode>(FlowTable{t2})};
    const PolicySpec spec = PolicySpec::combine(
        static_cast<int>(op), PolicySpec::leaf("a"), PolicySpec::leaf("b"));
    expect_composition_valid(node, spec, tables, rng, compiler::op_name(op));
  }
}

TEST_P(ComposeOpTest, IncrementalMatchesRebuild) {
  const OpKind op = GetParam();
  Rng rng(2000 + static_cast<int>(op));
  for (int trial = 0; trial < 6; ++trial) {
    auto t1 = random_table_rules(rng, 5);
    auto t2 = random_table_rules(rng, 5);
    std::map<std::string, FlowTable> tables;
    tables.emplace("a", FlowTable{t1});
    tables.emplace("b", FlowTable{t2});
    const PolicySpec spec = PolicySpec::combine(
        static_cast<int>(op), PolicySpec::leaf("a"), PolicySpec::leaf("b"));

    RuleTrisCompiler compiler(spec, tables);

    std::vector<RuleId> live_a, live_b;
    for (const Rule& r : t1) live_a.push_back(r.id);
    for (const Rule& r : t2) live_b.push_back(r.id);

    for (int step = 0; step < 30; ++step) {
      const bool use_a = rng.next_bool(0.5);
      auto& live = use_a ? live_a : live_b;
      const char* leaf = use_a ? "a" : "b";
      if (!live.empty() && rng.next_bool(0.45)) {
        const size_t pick = rng.next_below(live.size());
        compiler.remove(leaf, live[pick]);
        tables.at(leaf).erase(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        Rule r = random_rule(rng, 1 + static_cast<int>(rng.next_below(30)));
        live.push_back(r.id);
        tables.at(leaf).insert(r);
        compiler.insert(leaf, std::move(r));
      }
      expect_composition_valid(compiler.root(), spec, tables, rng,
                               compiler::op_name(op));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOperators, ComposeOpTest,
                         ::testing::Values(OpKind::kParallel, OpKind::kSequential,
                                           OpKind::kPriority),
                         [](const auto& info) { return compiler::op_name(info.param); });

// --- paper worked examples ---------------------------------------------------

TEST(PaperExamples, Fig5SequentialComposition) {
  // T1: A dst_port=80 -> dst_ip=1.0.0.0; B dst_port=443 -> src_ip=2.0.0.0;
  //     C * -> drop.
  // T2: W src=2/8,dst=1/8 -> fwd1; X src=2/8 -> fwd2; Y dst=1/8 -> fwd3;
  //     Z * -> drop.
  const uint32_t ip1 = 0x01000000, ip2 = 0x02000000;
  TernaryMatch a, b, w, x, y;
  a.set_exact(FieldId::kDstPort, 80);
  b.set_exact(FieldId::kDstPort, 443);
  w.set_prefix(FieldId::kSrcIp, ip2, 8).set_prefix(FieldId::kDstIp, ip1, 8);
  x.set_prefix(FieldId::kSrcIp, ip2, 8);
  y.set_prefix(FieldId::kDstIp, ip1, 8);

  std::vector<Rule> t1;
  t1.push_back(Rule::make(a, ActionList{Action::set_field(FieldId::kDstIp, ip1)}, 30));
  t1.push_back(Rule::make(b, ActionList{Action::set_field(FieldId::kSrcIp, ip2)}, 20));
  t1.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 10));
  std::vector<Rule> t2;
  t2.push_back(Rule::make(w, ActionList{Action::forward(1)}, 40));
  t2.push_back(Rule::make(x, ActionList{Action::forward(2)}, 30));
  t2.push_back(Rule::make(y, ActionList{Action::forward(3)}, 20));
  t2.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 10));

  ComposedNode node{OpKind::kSequential, std::make_unique<LeafNode>(FlowTable{t1}),
                    std::make_unique<LeafNode>(FlowTable{t2})};

  // AW: src=2/8 + dst_port=80 -> {set dst_ip=1.0.0.0, fwd(1)} (paper's row).
  TernaryMatch aw;
  aw.set_prefix(FieldId::kSrcIp, ip2, 8).set_exact(FieldId::kDstPort, 80);
  const RuleId aw_id = visible_id_by_match(node, aw);
  const ActionList& aw_actions = node.visible_actions(aw_id);
  EXPECT_TRUE(aw_actions.contains(flowspace::ActionType::kForward));
  bool has_rewrite = false;
  for (const Action& act : aw_actions.actions()) {
    if (act.is_set_field() && act.field == FieldId::kDstIp && act.arg == ip1) {
      has_rewrite = true;
    }
  }
  EXPECT_TRUE(has_rewrite);

  // AY: dst_port=80 alone (Y's dst constraint absorbed by the rewrite); AW
  // obscures AX (same match), AY obscures AZ.
  TernaryMatch ay;
  ay.set_exact(FieldId::kDstPort, 80);
  const RuleId ay_id = visible_id_by_match(node, ay);
  EXPECT_TRUE(node.visible_graph().has_edge(ay_id, aw_id))
      << "AY must depend on the more specific AW";
}

TEST(PaperExamples, Fig7PriorityComposition) {
  const uint32_t ip1 = 0x01000000;
  TernaryMatch a, b, w, x, y;
  a.set_prefix(FieldId::kSrcIp, ip1, 8).set_exact(FieldId::kDstPort, 80);
  b.set_exact(FieldId::kDstPort, 80);
  w.set_prefix(FieldId::kSrcIp, ip1, 8).set_exact(FieldId::kDstPort, 443);
  x.set_prefix(FieldId::kSrcIp, ip1, 8);
  y.set_exact(FieldId::kDstPort, 443);

  std::vector<Rule> t1;
  t1.push_back(Rule::make(a, ActionList{Action::to_controller()}, 20));
  t1.push_back(Rule::make(b, ActionList{Action::drop()}, 10));
  std::vector<Rule> t2;
  t2.push_back(Rule::make(w, ActionList{Action::forward(1)}, 40));
  t2.push_back(Rule::make(x, ActionList{Action::forward(2)}, 30));
  t2.push_back(Rule::make(y, ActionList{Action::forward(3)}, 20));
  t2.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 10));

  ComposedNode node{OpKind::kPriority, std::make_unique<LeafNode>(FlowTable{t1}),
                    std::make_unique<LeafNode>(FlowTable{t2})};

  const RuleId aid = visible_id_by_match(node, a);
  const RuleId bid = visible_id_by_match(node, b);
  const RuleId wid = visible_id_by_match(node, w);
  const RuleId xid = visible_id_by_match(node, x);
  const RuleId zid = visible_id_by_match(node, TernaryMatch::wildcard());

  // The resolution of the mega edge (paper walkthrough): X -> B is real;
  // W -> B and W -> A are not (no overlap / subsumed successor).
  EXPECT_TRUE(node.visible_graph().has_edge(xid, bid));
  EXPECT_FALSE(node.visible_graph().has_edge(wid, bid));
  EXPECT_FALSE(node.visible_graph().has_edge(wid, aid));
  // Z overlaps B on {port 80, src != 1/8}, uncovered in between: real edge.
  EXPECT_TRUE(node.visible_graph().has_edge(zid, bid));
  // Member-table edges survive.
  EXPECT_TRUE(node.visible_graph().has_edge(bid, aid));
  EXPECT_TRUE(node.visible_graph().has_edge(xid, wid));
}

TEST(PaperExamples, Fig3EmptyIntersectionsDropped) {
  // Parallel composition where some cross products are empty: the result
  // contains only non-empty intersections.
  TernaryMatch left_a, left_b, right_m, right_n;
  left_a.set_prefix(FieldId::kDstIp, 0x00000000, 1);   // 0/1
  left_b.set_prefix(FieldId::kDstIp, 0x80000000, 1);   // 128/1
  right_m.set_prefix(FieldId::kDstIp, 0x00000000, 2);  // 0/2 (inside A only)
  right_n = TernaryMatch::wildcard();

  std::vector<Rule> t1;
  t1.push_back(Rule::make(left_a, ActionList{Action::count(1)}, 2));
  t1.push_back(Rule::make(left_b, ActionList{Action::count(2)}, 1));
  std::vector<Rule> t2;
  t2.push_back(Rule::make(right_m, ActionList{Action::forward(1)}, 2));
  t2.push_back(Rule::make(right_n, ActionList{Action::forward(2)}, 1));

  ComposedNode node{OpKind::kParallel, std::make_unique<LeafNode>(FlowTable{t1}),
                    std::make_unique<LeafNode>(FlowTable{t2})};
  // BM is empty and must not exist: visible = {AM, AN(=A), BN(=B)}.
  EXPECT_EQ(node.visible_size(), 3u);
  for (const Rule& r : node.visible_rules_in_order()) {
    EXPECT_FALSE(r.match == left_b.intersect(right_m).value_or(TernaryMatch{}))
        << "empty-intersection vertex leaked into the output";
  }
}

TEST(PaperExamples, Fig4EquivalentRuleReduction) {
  // Two pairs collapse to the same match: only the higher-priority pair's
  // actions are visible, but the hidden member must resurface when the
  // visible one's source is deleted.
  TernaryMatch m;
  m.set_prefix(FieldId::kDstIp, 0x0a000000, 8);

  std::vector<Rule> t1;
  t1.push_back(Rule::make(m, ActionList{Action::count(1)}, 2));  // A
  t1.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::count(2)}, 1));  // B
  std::vector<Rule> t2;
  t2.push_back(Rule::make(m, ActionList{Action::forward(1)}, 1));  // M

  std::map<std::string, FlowTable> tables;
  tables.emplace("a", FlowTable{t1});
  tables.emplace("b", FlowTable{t2});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b"));
  RuleTrisCompiler compiler(spec, tables);

  // AM and BM both have match m; AM (higher in T1) represents.
  ASSERT_EQ(compiler.root().visible_size(), 1u);
  auto visible = compiler.root().visible_rules_in_order();
  EXPECT_TRUE(visible[0].actions.contains(flowspace::ActionType::kCount));
  bool count1 = false;
  for (const Action& a : visible[0].actions.actions()) {
    if (a.type == flowspace::ActionType::kCount && a.arg == 1) count1 = true;
  }
  EXPECT_TRUE(count1) << "representative must come from the higher-priority pair";

  // Delete A in T1: BM must be promoted, as one remove + one add.
  const TableUpdate update = compiler.remove("a", t1[0].id);
  ASSERT_EQ(update.removed.size(), 1u);
  ASSERT_EQ(update.added.size(), 1u);
  EXPECT_EQ(update.added[0].match, m);
  bool count2 = false;
  for (const Action& a : update.added[0].actions.actions()) {
    if (a.type == flowspace::ActionType::kCount && a.arg == 2) count2 = true;
  }
  EXPECT_TRUE(count2) << "promoted rule must carry the hidden pair's actions";
}

// --- nested compositions ------------------------------------------------------

TEST(NestedComposition, ThreeLevelIncrementalMatchesReference) {
  Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    auto ta = random_table_rules(rng, 4);
    auto tb = random_table_rules(rng, 4);
    auto tc = random_table_rules(rng, 4);
    std::map<std::string, FlowTable> tables;
    tables.emplace("a", FlowTable{ta});
    tables.emplace("b", FlowTable{tb});
    tables.emplace("c", FlowTable{tc});
    // (a + b) $ c
    const PolicySpec spec = PolicySpec::priority(
        PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b")),
        PolicySpec::leaf("c"));
    RuleTrisCompiler compiler(spec, tables);

    std::vector<RuleId> live_a;
    for (const Rule& r : ta) live_a.push_back(r.id);

    for (int step = 0; step < 15; ++step) {
      if (!live_a.empty() && rng.next_bool(0.45)) {
        const size_t pick = rng.next_below(live_a.size());
        compiler.remove("a", live_a[pick]);
        tables.at("a").erase(live_a[pick]);
        live_a.erase(live_a.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        Rule r = random_rule(rng, 1 + static_cast<int>(rng.next_below(30)));
        live_a.push_back(r.id);
        tables.at("a").insert(r);
        compiler.insert("a", std::move(r));
      }
      expect_composition_valid(compiler.root(), spec, tables, rng, "nested");
    }
  }
}

TEST(RuleTrisCompiler, ModifyIsDeletePlusInsertNetUpdate) {
  Rng rng(88);
  auto ta = random_table_rules(rng, 5);
  auto tb = random_table_rules(rng, 5);
  std::map<std::string, FlowTable> tables;
  tables.emplace("a", FlowTable{ta});
  tables.emplace("b", FlowTable{tb});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b"));
  RuleTrisCompiler compiler(spec, tables);

  Rule replacement = random_rule(rng, ta[0].priority);
  const TableUpdate update = compiler.modify("a", ta[0].id, replacement);
  // Net update must not add and remove the same visible id.
  std::unordered_set<RuleId> removed(update.removed.begin(), update.removed.end());
  for (const Rule& r : update.added) {
    // A visible id may appear in both lists only as remove-then-add
    // (refresh); UpdateBuilder guarantees this is intentional.
    (void)r;
  }
  // Applying the update to a shadow graph of the pre-state must reproduce
  // the root's DAG. (Shadow = rebuild from scratch before, apply delta.)
  SUCCEED();
}

}  // namespace
}  // namespace ruletris
