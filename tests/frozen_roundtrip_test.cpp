// Frozen-artifact properties: freeze -> thaw is lossless, corrupt blobs
// never parse, epoch deltas replay to the live compiler's exact state, and
// the zero-copy restore path reproduces a cold install slot-for-slot.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "classbench/generator.h"
#include "compiler/composed_node.h"
#include "compiler/ruletris_compiler.h"
#include "frozen/delta.h"
#include "frozen/frozen.h"
#include "proto/codec.h"
#include "runtime/warm_boot.h"
#include "runtime/workload.h"
#include "tcam/dag_scheduler.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using compiler::PolicySpec;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using frozen::Bytes;
using frozen::PolicyImage;
using tcam::DagScheduler;
using tcam::Tcam;
using util::Rng;

std::map<std::string, FlowTable> tables_for(const std::vector<Rule>& left,
                                            const std::vector<Rule>& right) {
  std::map<std::string, FlowTable> t;
  t.emplace("left", FlowTable{left});
  t.emplace("right", FlowTable{right});
  return t;
}

struct Compiled {
  std::vector<Rule> left;
  std::vector<Rule> right;
  PolicySpec spec = PolicySpec::leaf("left");
  compiler::RuleTrisCompiler frontend;

  Compiled(size_t n_left, size_t n_right, Rng& rng)
      : left(classbench::generate_monitor(n_left, rng)),
        right(classbench::generate_router(n_right, rng)),
        spec(PolicySpec::parallel(PolicySpec::leaf("left"),
                                  PolicySpec::leaf("right"))),
        frontend(spec, tables_for(left, right)) {}

  const compiler::ComposedNode& node() const {
    return dynamic_cast<const compiler::ComposedNode&>(frontend.root());
  }
};

/// Freezing a compiled policy and thawing the blob must reproduce the image
/// exactly (value equality) and its id-independent snapshot must equal a
/// from-scratch recompile of the same member tables — across random policy
/// sizes and seeds.
TEST(FrozenRoundtrip, FreezeThawIsLosslessAcrossRandomPolicies) {
  const struct {
    size_t left, right;
  } shapes[] = {{8, 4}, {40, 16}, {120, 32}};
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (const auto& shape : shapes) {
      Rng rng(seed * 7919);
      Compiled c(shape.left, shape.right, rng);

      PolicyImage image = frozen::capture_policy(c.frontend, /*epoch=*/seed);
      const Bytes blob = frozen::freeze(image);
      const PolicyImage thawed = frozen::thaw(blob);

      EXPECT_EQ(thawed, image) << "seed " << seed << " left " << shape.left;
      EXPECT_EQ(thawed.epoch, seed);

      compiler::RuleTrisCompiler recompiled(c.spec,
                                            tables_for(c.left, c.right));
      const auto& renode =
          dynamic_cast<const compiler::ComposedNode&>(recompiled.root());
      EXPECT_TRUE(thawed.tables[0].snapshot() == renode.snapshot())
          << "seed " << seed << " left " << shape.left;

      // Deterministic serialization: re-freezing the thawed image is
      // bit-identical.
      EXPECT_EQ(frozen::freeze(thawed), blob);
    }
  }
}

/// The zero-copy restore path must reproduce a cold DAG-scheduled install
/// slot-for-slot and leave the scheduler with a constraint-valid layout.
TEST(FrozenRoundtrip, RestoreMatchesColdInstallSlotForSlot) {
  Rng rng(0xf0);
  Compiled c(80, 24, rng);
  const auto& node = c.node();

  const size_t capacity = node.visible_size() + node.visible_size() / 8 + 32;
  Tcam cold_tcam(capacity);
  DagScheduler cold(cold_tcam);
  tcam::BackendUpdate initial;
  initial.added = node.visible_rules_in_order();
  for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
  initial.dag.added_edges = node.visible_graph().edges();
  ASSERT_TRUE(cold.apply(initial));

  PolicyImage image = frozen::capture_policy(c.frontend, 1);
  frozen::capture_layout(image.tables[0], cold_tcam);
  const Bytes blob = frozen::freeze(image);

  Tcam warm_tcam(capacity);
  DagScheduler warm(warm_tcam);
  const frozen::FrozenPolicy fp(blob.data(), blob.size());
  EXPECT_EQ(fp.restore(0, warm), cold_tcam.occupied());
  EXPECT_TRUE(warm.layout_valid());

  for (size_t addr = 0; addr < capacity; ++addr) {
    ASSERT_EQ(cold_tcam.at(addr), warm_tcam.at(addr)) << "addr " << addr;
    if (const auto id = cold_tcam.at(addr)) {
      EXPECT_EQ(cold_tcam.rule(*id).match, warm_tcam.rule(*id).match);
      EXPECT_EQ(cold_tcam.rule(*id).priority, warm_tcam.rule(*id).priority);
    }
  }

  // The restored scheduler is update-ready: a follow-up insert through the
  // cached search must succeed and keep the layout valid.
  Rule extra = classbench::generate_monitor(1, rng).front();
  warm.graph().add_vertex(extra.id);
  warm.rebuild_caches();
  EXPECT_TRUE(warm.insert(extra));
  EXPECT_TRUE(warm.layout_valid());
}

/// Corruption fuzz: every truncation of a frozen blob must throw, and any
/// single-bit flip must throw (the arena CRC32 detects all single-bit
/// errors, so the bit sweep is exhaustive over sampled bytes).
TEST(FrozenRoundtrip, TruncatedAndBitFlippedBlobsAlwaysThrow) {
  Rng rng(0xbad);
  Compiled c(30, 8, rng);
  PolicyImage image = frozen::capture_policy(c.frontend, 1);
  const Bytes blob = frozen::freeze(image);
  ASSERT_GT(blob.size(), 64u);

  for (size_t len = 0; len < blob.size(); ++len) {
    Bytes cut(blob.begin(), blob.begin() + static_cast<long>(len));
    EXPECT_THROW(frozen::thaw(cut), std::runtime_error) << "len " << len;
  }

  // Every bit of a sampled byte stride; stride 1 near the header (magic,
  // version, section table) where a silent misparse would hurt the most.
  for (size_t i = 0; i < blob.size(); i += (i < 128 ? 1 : 17)) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes damaged = blob;
      damaged[i] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_THROW(frozen::thaw(damaged), std::runtime_error)
          << "byte " << i << " bit " << bit;
    }
  }
}

/// Delta blobs get the same treatment: truncations and bit flips throw.
TEST(FrozenRoundtrip, CorruptDeltaBlobsAlwaysThrow) {
  Rng rng(0xdead);
  Compiled c(30, 8, rng);
  runtime::EpochFreezer freezer;
  freezer.observe(1, c.frontend);
  const Rule fresh = classbench::generate_monitor(1, rng).front();
  c.frontend.remove("left", c.left.front().id);
  c.frontend.insert("left", fresh);
  freezer.observe(2, c.frontend);
  ASSERT_EQ(freezer.patch_frames().size(), 1u);

  const proto::MessageBatch batch =
      proto::decode_batch(freezer.patch_frames().front());
  const auto* patch = std::get_if<proto::SnapshotPatch>(&batch.front());
  ASSERT_NE(patch, nullptr);
  const Bytes& delta_blob = patch->blob;

  for (size_t len = 0; len < delta_blob.size(); ++len) {
    Bytes cut(delta_blob.begin(), delta_blob.begin() + static_cast<long>(len));
    EXPECT_THROW(frozen::decode_delta(cut), std::runtime_error) << "len " << len;
  }
  for (size_t i = 0; i < delta_blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes damaged = delta_blob;
      damaged[i] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_THROW(frozen::decode_delta(damaged), std::runtime_error)
          << "byte " << i << " bit " << bit;
    }
  }
}

/// Epoch-delta property, across random churn streams: diff(from, to)
/// encodes/decodes bit-identically, applies back to exactly `to`, and a
/// full replay from the base lands on the live compiler's final snapshot.
TEST(FrozenRoundtrip, DeltasReplayToTheLiveCompilerState) {
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    Rng rng(seed);
    Compiled c(50, 12, rng);

    runtime::EpochFreezer freezer;
    freezer.observe(1, c.frontend);
    PolicyImage rolling = frozen::thaw(freezer.base_blob());

    std::vector<RuleId> live;
    for (const Rule& r : c.left) live.push_back(r.id);
    for (uint64_t epoch = 2; epoch <= 5; ++epoch) {
      for (int k = 0; k < 6; ++k) {
        const size_t victim = static_cast<size_t>(rng.next_below(live.size()));
        c.frontend.remove("left", live[victim]);
        const Rule fresh = classbench::generate_monitor(1, rng).front();
        live[victim] = fresh.id;
        c.frontend.insert("left", fresh);
      }
      freezer.observe(epoch, c.frontend);

      // The freshest patch frame: decode, verify bit-identity, apply to the
      // rolling image; it must equal a direct capture of the live state.
      const proto::Bytes& frame = freezer.patch_frames().back();
      const proto::MessageBatch batch = proto::decode_batch(frame);
      ASSERT_EQ(proto::encode_batch(batch), frame);
      const auto* patch = std::get_if<proto::SnapshotPatch>(&batch.front());
      ASSERT_NE(patch, nullptr);
      const frozen::PolicyDelta delta = frozen::decode_delta(patch->blob);
      ASSERT_EQ(frozen::encode_delta(delta), patch->blob);

      frozen::apply_delta(rolling, delta);
      PolicyImage direct = frozen::capture_policy(c.frontend, epoch);
      // apply_delta clears stale layouts; direct captures carry none either.
      EXPECT_EQ(rolling, direct) << "seed " << seed << " epoch " << epoch;
    }

    runtime::ThawedController thawed(freezer.base_blob());
    for (const proto::Bytes& frame : freezer.patch_frames()) {
      thawed.apply_patch_frame(frame);
    }
    EXPECT_EQ(thawed.epoch(), 5u);
    EXPECT_TRUE(thawed.image().tables[0].snapshot() == c.node().snapshot())
        << "seed " << seed;
  }
}

/// End-to-end runtime integration: EpochFreezer hangs off
/// ChurnSpec::observer, a ThawedController replays every frame, and the
/// final image snapshot equals the live front-end after the whole stream.
TEST(FrozenRoundtrip, ObserverDrivenFreezerSurvivesChurnWorkload) {
  Rng rng(0x0b5);
  const std::vector<Rule> left = classbench::generate_monitor(40, rng);
  const std::vector<Rule> right = classbench::generate_router(12, rng);
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("left"), PolicySpec::leaf("right"));

  runtime::EpochFreezer freezer;
  compiler::CompileSnapshot final_snapshot;
  runtime::ChurnSpec churn;
  churn.leaf = "left";
  churn.updates = 30;
  churn.seed = 0x0b5;
  churn.observer = [&](size_t epoch, const compiler::RuleTrisCompiler& fe) {
    freezer.observe(epoch, fe);
    final_snapshot =
        dynamic_cast<const compiler::ComposedNode&>(fe.root()).snapshot();
  };
  runtime::compile_churn_workload(spec, tables_for(left, right), churn);

  ASSERT_TRUE(freezer.has_base());
  ASSERT_FALSE(freezer.patch_frames().empty());

  runtime::ThawedController thawed(freezer.base_blob());
  for (const proto::Bytes& frame : freezer.patch_frames()) {
    thawed.apply_patch_frame(frame);
  }
  EXPECT_TRUE(thawed.image().tables[0].snapshot() == final_snapshot);
}

}  // namespace
}  // namespace ruletris
