// CacheFlow manager (Sec. V-C): cover-set correctness — the fast path never
// returns a wrong answer, punts are installed exactly where dependencies
// demand them, and swaps keep everything consistent under both firmwares.
#include <gtest/gtest.h>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "switchsim/traffic_engine.h"
#include "tcam/cacheflow.h"
#include "test_util.h"

namespace ruletris {
namespace {

using classbench::generate_router;
using dag::build_min_dag;
using flowspace::FlowTable;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;
using tcam::CacheFlowManager;
using util::Rng;

class CacheFlowModeTest : public ::testing::TestWithParam<CacheFlowManager::Mode> {};

Packet router_packet(Rng& rng) {
  Packet p;
  p.set(flowspace::FieldId::kDstIp, rng.next_u32());
  return p;
}

TEST_P(CacheFlowModeTest, InstallBringsCoverSet) {
  Rng rng(3);
  const auto rules = generate_router(60, rng);
  FlowTable table{rules};
  const auto graph = build_min_dag(table);
  CacheFlowManager mgr(table.rules(), graph, GetParam(), 64);

  // Pick a rule with at least one dependency; installing it must create a
  // cover (or co-install nothing if it has none).
  RuleId dependent = 0;
  for (const Rule& r : table.rules()) {
    if (!graph.successors(r.id).empty()) {
      dependent = r.id;
      break;
    }
  }
  ASSERT_NE(dependent, 0u);
  ASSERT_TRUE(mgr.install(dependent));
  EXPECT_TRUE(mgr.is_cached(dependent));
  EXPECT_EQ(mgr.cover_count(), graph.successors(dependent).size());
  // TCAM holds the rule plus its covers.
  EXPECT_EQ(mgr.tcam().occupied(), 1 + mgr.cover_count());
}

TEST_P(CacheFlowModeTest, RealRuleSupersedesCover) {
  Rng rng(4);
  const auto rules = generate_router(60, rng);
  FlowTable table{rules};
  const auto graph = build_min_dag(table);
  CacheFlowManager mgr(table.rules(), graph, GetParam(), 64);

  RuleId dependent = 0, dep = 0;
  for (const Rule& r : table.rules()) {
    if (!graph.successors(r.id).empty()) {
      dependent = r.id;
      dep = *graph.successors(r.id).begin();
      break;
    }
  }
  ASSERT_NE(dependent, 0u);
  ASSERT_TRUE(mgr.install(dependent));
  const size_t covers_before = mgr.cover_count();
  ASSERT_TRUE(mgr.install(dep));
  // The cover standing in for `dep` is gone; dep's own covers may appear.
  EXPECT_TRUE(mgr.is_cached(dep));
  EXPECT_LE(mgr.cover_count(),
            covers_before - 1 + graph.successors(dep).size());
}

TEST_P(CacheFlowModeTest, EvictionDemotesToCover) {
  Rng rng(5);
  const auto rules = generate_router(60, rng);
  FlowTable table{rules};
  const auto graph = build_min_dag(table);
  CacheFlowManager mgr(table.rules(), graph, GetParam(), 64);

  RuleId dependent = 0, dep = 0;
  for (const Rule& r : table.rules()) {
    if (!graph.successors(r.id).empty()) {
      dependent = r.id;
      dep = *graph.successors(r.id).begin();
      break;
    }
  }
  ASSERT_NE(dependent, 0u);
  ASSERT_TRUE(mgr.install(dependent));
  ASSERT_TRUE(mgr.install(dep));
  mgr.evict(dep);
  EXPECT_FALSE(mgr.is_cached(dep));
  // A punt rule must have replaced it because `dependent` still needs it.
  EXPECT_GE(mgr.cover_count(), 1u);
  Rng prng(6);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(mgr.lookup_consistent(router_packet(prng)));
  }
}

TEST_P(CacheFlowModeTest, RandomSwapsStayConsistent) {
  Rng rng(7);
  const auto rules = generate_router(120, rng);
  FlowTable table{rules};
  CacheFlowManager mgr(table.rules(), build_min_dag(table), GetParam(), 64);

  std::vector<RuleId> all;
  for (const Rule& r : table.rules()) all.push_back(r.id);

  // Fill to ~70% with random rules.
  std::vector<RuleId> cached;
  while (mgr.tcam().occupied() < 44) {
    const RuleId pick = all[rng.next_below(all.size())];
    if (mgr.is_cached(pick)) continue;
    ASSERT_TRUE(mgr.install(pick));
    cached.push_back(pick);
  }

  for (int swap = 0; swap < 150; ++swap) {
    const size_t out_idx = rng.next_below(cached.size());
    const RuleId out = cached[out_idx];
    RuleId in = all[rng.next_below(all.size())];
    int guard = 0;
    while ((mgr.is_cached(in) || in == out) && guard++ < 200) {
      in = all[rng.next_below(all.size())];
    }
    if (mgr.is_cached(in) || in == out) continue;
    if (!mgr.swap(out, in)) {
      // Full TCAM (covers included): the manager rolled the install back;
      // restore the evicted rule and skip this swap, as a real cache would.
      ASSERT_TRUE(mgr.install(out));
      continue;
    }
    cached[out_idx] = in;

    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(mgr.lookup_consistent(router_packet(rng)))
          << "fast path returned a wrong decision after swap " << swap;
    }
  }
}

TEST_P(CacheFlowModeTest, RandomChurnStreamStaysConsistent) {
  // Mixed install/evict/swap/rebalance stream; after EVERY step the fast
  // path must still never contradict the full table, and the combined
  // two-level lookup (classify) must equal the full table's decision.
  Rng rng(13);
  const auto rules = generate_router(150, rng);
  FlowTable table{rules};
  CacheFlowManager mgr(table.rules(), build_min_dag(table), GetParam(), 72);

  std::vector<RuleId> all;
  for (const Rule& r : table.rules()) all.push_back(r.id);
  mgr.warm(CacheFlowManager::AdmissionPolicy::kStaticDag, 50);

  auto audit = [&](int step) {
    for (int k = 0; k < 15; ++k) {
      // Random headers plus packets aimed at a specific rule's region, so
      // the audit exercises both covered and uncovered parts of the space.
      const Packet p = k % 2 == 0
                           ? router_packet(rng)
                           : switchsim::synth_packet(
                                 table.rules(),
                                 rng.next_below(table.size() * 7));
      ASSERT_TRUE(mgr.lookup_consistent(p)) << "step " << step;
      const Rule* truth = table.lookup(p);
      const auto out = mgr.classify(p);
      ASSERT_EQ(truth == nullptr, out.rule == nullptr) << "step " << step;
      if (truth != nullptr) {
        ASSERT_EQ(truth->id, out.rule->id) << "step " << step;
      }
    }
    ASSERT_LE(mgr.tcam().occupied(), mgr.tcam().capacity());
  };

  for (int step = 0; step < 200; ++step) {
    switch (rng.next_below(4)) {
      case 0: {  // install a random uncached rule (may fail when full)
        const RuleId pick = all[rng.next_below(all.size())];
        if (!mgr.is_cached(pick)) mgr.install(pick);
        break;
      }
      case 1: {  // evict a random cached rule
        const auto cached = mgr.cached_rules();
        if (!cached.empty()) mgr.evict(cached[rng.next_below(cached.size())]);
        break;
      }
      case 2: {  // swap
        const auto cached = mgr.cached_rules();
        const RuleId in = all[rng.next_below(all.size())];
        if (!cached.empty() && !mgr.is_cached(in)) {
          const RuleId out = cached[rng.next_below(cached.size())];
          if (!mgr.swap(out, in)) mgr.install(out);
        }
        break;
      }
      default: {  // traffic burst + flow-driven rebalance
        for (int b = 0; b < 8; ++b) {
          mgr.add_hits(all[rng.next_below(all.size())],
                       1 + rng.next_below(64));
        }
        mgr.rebalance(CacheFlowManager::AdmissionPolicy::kFlowDriven, 4);
        if (step % 3 == 0) mgr.age_hits();
        break;
      }
    }
    audit(step);
  }
}

INSTANTIATE_TEST_SUITE_P(BothFirmwares, CacheFlowModeTest,
                         ::testing::Values(CacheFlowManager::Mode::kDagFirmware,
                                           CacheFlowManager::Mode::kPriorityFirmware),
                         [](const auto& info) {
                           return info.param == CacheFlowManager::Mode::kDagFirmware
                                      ? "dag"
                                      : "priority";
                         });

TEST(CacheFlow, DagModeIsCheaperThanPriorityModeOnSwaps) {
  // The headline of Fig. 11, as a coarse invariant: total TCAM writes for
  // the same swap sequence must be lower with the DAG firmware.
  Rng gen(11);
  const auto rules = generate_router(200, gen);
  FlowTable table{rules};
  const auto graph = build_min_dag(table);

  size_t writes[2] = {0, 0};
  int mode_idx = 0;
  for (auto mode : {CacheFlowManager::Mode::kDagFirmware,
                    CacheFlowManager::Mode::kPriorityFirmware}) {
    CacheFlowManager mgr(table.rules(), graph, mode, 64);
    Rng rng(12);  // identical sequence for both modes
    std::vector<RuleId> all;
    for (const Rule& r : table.rules()) all.push_back(r.id);
    std::vector<RuleId> cached;
    while (mgr.tcam().occupied() < 52) {  // ~0.8 load
      const RuleId pick = all[rng.next_below(all.size())];
      if (mgr.is_cached(pick)) continue;
      ASSERT_TRUE(mgr.install(pick));
      cached.push_back(pick);
    }
    const size_t baseline_writes = mgr.tcam().stats().entry_writes;
    for (int swap = 0; swap < 100; ++swap) {
      const size_t out_idx = rng.next_below(cached.size());
      RuleId in = all[rng.next_below(all.size())];
      int guard = 0;
      while ((mgr.is_cached(in) || in == cached[out_idx]) && guard++ < 300) {
        in = all[rng.next_below(all.size())];
      }
      if (mgr.is_cached(in)) continue;
      if (!mgr.swap(cached[out_idx], in)) {
        ASSERT_TRUE(mgr.install(cached[out_idx]));
        continue;
      }
      cached[out_idx] = in;
    }
    writes[mode_idx++] = mgr.tcam().stats().entry_writes - baseline_writes;
  }
  EXPECT_LT(writes[0], writes[1])
      << "DAG-guided swaps must use fewer entry writes than priority-based";
}

}  // namespace
}  // namespace ruletris
