// Baseline and CoVisor compilers: semantic equivalence with the reference
// composition, incremental behaviour, and the update-stream shapes the paper
// relies on (baseline reprioritizes; CoVisor never does).
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "compiler/baseline.h"
#include "compiler/covisor.h"
#include "test_util.h"

namespace ruletris {
namespace {

using compiler::BaselineCompiler;
using compiler::compose_from_scratch;
using compiler::CovisorCompiler;
using compiler::PolicySpec;
using compiler::PrioritizedOp;
using compiler::PrioritizedUpdate;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using testutil::random_rule;
using testutil::semantically_equal;
using util::Rng;


/// CoVisor's priority algebra (like the real system) assumes overlapping
/// rules within one member table carry distinct priorities; draw without
/// replacement.
struct DistinctPriorities {
  std::unordered_set<int32_t> used;
  int32_t draw(Rng& rng) {
    for (;;) {
      const int32_t p = 1 + static_cast<int32_t>(rng.next_below(4096));
      if (used.insert(p).second) return p;
    }
  }
};

std::vector<Rule> random_table_rules(Rng& rng, int n, DistinctPriorities& prios) {
  std::vector<Rule> rules;
  for (int i = 0; i < n; ++i) {
    rules.push_back(random_rule(rng, prios.draw(rng)));
  }
  return rules;
}

struct Scenario {
  PolicySpec spec;
  std::map<std::string, FlowTable> tables;
  DistinctPriorities prios;
};

Scenario make_scenario(int op, Rng& rng) {
  Scenario s{PolicySpec::combine(op, PolicySpec::leaf("a"), PolicySpec::leaf("b")), {}, {}};
  s.tables.emplace("a", FlowTable{random_table_rules(rng, 5, s.prios)});
  s.tables.emplace("b", FlowTable{random_table_rules(rng, 5, s.prios)});
  return s;
}

class BaselineOpTest : public ::testing::TestWithParam<int> {};
class CovisorOpTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineOpTest, CompiledMatchesReference) {
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    Scenario s = make_scenario(GetParam(), rng);
    BaselineCompiler compiler(s.spec, s.tables);
    EXPECT_TRUE(semantically_equal(compiler.compiled(),
                                   compose_from_scratch(s.spec, s.tables), rng));
  }
}

TEST_P(BaselineOpTest, UpdatesTrackReference) {
  Rng rng(200 + GetParam());
  Scenario s = make_scenario(GetParam(), rng);
  BaselineCompiler compiler(s.spec, s.tables);
  std::vector<RuleId> live;
  for (const Rule& r : s.tables.at("a").rules()) live.push_back(r.id);

  for (int step = 0; step < 15; ++step) {
    if (!live.empty() && rng.next_bool(0.4)) {
      const size_t pick = rng.next_below(live.size());
      compiler.remove("a", live[pick]);
      s.tables.at("a").erase(live[pick]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      Rule r = random_rule(rng, s.prios.draw(rng));
      live.push_back(r.id);
      s.tables.at("a").insert(r);
      compiler.insert("a", std::move(r));
    }
    EXPECT_TRUE(semantically_equal(compiler.compiled(),
                                   compose_from_scratch(s.spec, s.tables), rng, 300));
  }
}

TEST(BaselineCompiler, EmitsReprioritizationModifies) {
  // The defining pathology (Sec. VII-B): priorities are sequential, so an
  // insert into one member renumbers a swath of unrelated result rules.
  Rng rng(42);
  DistinctPriorities prios;
  std::map<std::string, FlowTable> tables;
  tables.emplace("a", FlowTable{random_table_rules(rng, 8, prios)});
  tables.emplace("b", FlowTable{random_table_rules(rng, 8, prios)});
  const PolicySpec spec = PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b"));
  BaselineCompiler compiler(spec, tables);

  size_t modifies = 0;
  for (int step = 0; step < 10; ++step) {
    Rule r = random_rule(rng, 1 + static_cast<int>(rng.next_below(30)));
    const PrioritizedUpdate update = compiler.insert("a", std::move(r));
    for (const PrioritizedOp& op : update) {
      if (op.kind == PrioritizedOp::Kind::kModify) ++modifies;
    }
  }
  EXPECT_GT(modifies, 0u) << "baseline must reprioritize existing rules";
}

TEST_P(CovisorOpTest, CompiledMatchesReference) {
  Rng rng(300 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    Scenario s = make_scenario(GetParam(), rng);
    CovisorCompiler compiler(s.spec, s.tables);
    EXPECT_TRUE(semantically_equal(compiler.compiled(),
                                   compose_from_scratch(s.spec, s.tables), rng));
  }
}

TEST_P(CovisorOpTest, IncrementalTracksReference) {
  Rng rng(400 + GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s = make_scenario(GetParam(), rng);
    CovisorCompiler compiler(s.spec, s.tables);
    std::vector<RuleId> live_a, live_b;
    for (const Rule& r : s.tables.at("a").rules()) live_a.push_back(r.id);
    for (const Rule& r : s.tables.at("b").rules()) live_b.push_back(r.id);

    for (int step = 0; step < 20; ++step) {
      const bool use_a = rng.next_bool(0.5);
      auto& live = use_a ? live_a : live_b;
      const char* leaf = use_a ? "a" : "b";
      if (!live.empty() && rng.next_bool(0.45)) {
        const size_t pick = rng.next_below(live.size());
        compiler.remove(leaf, live[pick]);
        s.tables.at(leaf).erase(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        Rule r = random_rule(rng, s.prios.draw(rng));
        live.push_back(r.id);
        s.tables.at(leaf).insert(r);
        compiler.insert(leaf, std::move(r));
      }
      EXPECT_TRUE(semantically_equal(compiler.compiled(),
                                     compose_from_scratch(s.spec, s.tables), rng, 300))
          << "step " << step;
    }
  }
}

TEST(CovisorCompiler, NeverReprioritizes) {
  Rng rng(7);
  DistinctPriorities prios;
  std::map<std::string, FlowTable> tables;
  tables.emplace("a", FlowTable{random_table_rules(rng, 6, prios)});
  tables.emplace("b", FlowTable{random_table_rules(rng, 6, prios)});
  const PolicySpec spec = PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b"));
  CovisorCompiler compiler(spec, tables);
  for (int step = 0; step < 10; ++step) {
    Rule r = random_rule(rng, 1 + static_cast<int>(rng.next_below(30)));
    const PrioritizedUpdate update = compiler.insert("a", std::move(r));
    for (const PrioritizedOp& op : update) {
      EXPECT_NE(op.kind, PrioritizedOp::Kind::kModify)
          << "CoVisor's algebra must not touch existing rules";
    }
  }
}

TEST(CovisorCompiler, SequentialPriorityOverflowGuard) {
  Rng seed_rng(1);
  std::map<std::string, FlowTable> tables;
  std::vector<Rule> big;
  big.push_back(random_rule(seed_rng, compiler::kCovisorSeqWidth + 1));
  big.back().match = flowspace::TernaryMatch::wildcard();
  tables.emplace("a", FlowTable{});
  tables.emplace("b", FlowTable{big});
  const PolicySpec spec =
      PolicySpec::sequential(PolicySpec::leaf("a"), PolicySpec::leaf("b"));
  CovisorCompiler compiler(spec, tables);
  Rng rng(2);
  Rule l = random_rule(rng, 5);
  l.match = flowspace::TernaryMatch::wildcard();
  l.actions = flowspace::ActionList{};
  EXPECT_THROW(compiler.insert("a", std::move(l)), std::overflow_error);
}

std::string op_test_name(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"parallel", "sequential", "priority"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllOps, BaselineOpTest, ::testing::Values(0, 1, 2),
                         op_test_name);
INSTANTIATE_TEST_SUITE_P(AllOps, CovisorOpTest, ::testing::Values(0, 1, 2),
                         op_test_name);

}  // namespace
}  // namespace ruletris
