// Deterministic runtime soak (satellite c): 8 concurrent switch sessions
// replicating a randomized insert/delete/modify stream over a chaotic wire
// (drops, duplicates, reordering delays, agent restarts). Every switch TCAM
// must converge to the controller's compile snapshot, and the entire report
// must be bit-identical across runs and across thread counts. Registered as
// a ctest smoke test; the same binary runs under RULETRIS_ASAN and
// RULETRIS_TSAN configurations.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "classbench/generator.h"
#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/workload.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using compiler::PolicySpec;
using flowspace::FlowTable;
using runtime::ChurnSpec;
using runtime::CompiledWorkload;
using runtime::compile_churn_workload;
using runtime::Controller;
using runtime::FaultSpec;
using runtime::RuntimeConfig;
using runtime::RuntimeReport;
using runtime::SessionStats;

CompiledWorkload soak_workload(uint64_t seed) {
  util::Rng rng(seed);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{classbench::generate_monitor(30, rng)});
  tables.emplace("rtr", FlowTable{classbench::generate_router(25, rng)});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = 120;
  churn.seed = seed * 1000 + 17;
  return compile_churn_workload(spec, tables, churn);
}

RuntimeReport run_soak(const CompiledWorkload& wl, uint64_t fault_seed,
                       size_t threads) {
  RuntimeConfig cfg;
  cfg.n_switches = 8;
  cfg.knobs.window = 4;
  cfg.n_threads = threads;
  cfg.knobs.faults = FaultSpec::chaos();
  cfg.fault_seed = fault_seed;
  Controller controller(cfg);
  return controller.run(wl.epochs, wl.final_rules);
}

void expect_identical(const RuntimeReport& a, const RuntimeReport& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  EXPECT_EQ(a.data_frames_sent, b.data_frames_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.resync_replays, b.resync_replays);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_TRUE(a.ack_ms == b.ack_ms);
  EXPECT_TRUE(a.channel_ms == b.channel_ms);
  EXPECT_TRUE(a.tcam_ms == b.tcam_ms);
  // firmware_ms is wall clock — diagnostic only, explicitly not compared.
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_TRUE(a.sessions[i].wire == b.sessions[i].wire) << "session " << i;
    EXPECT_EQ(a.sessions[i].makespan_ms, b.sessions[i].makespan_ms)
        << "session " << i;
    EXPECT_TRUE(a.sessions[i].ack_ms == b.sessions[i].ack_ms)
        << "session " << i;
  }
}

TEST(RuntimeSoak, EightSwitchChaosConvergesAtFixedSeeds) {
  for (uint64_t fault_seed : {1ull, 7ull, 1234ull}) {
    const CompiledWorkload wl = soak_workload(fault_seed);
    const RuntimeReport report = run_soak(wl, fault_seed, 8);

    EXPECT_TRUE(report.all_converged) << "fault_seed " << fault_seed;
    EXPECT_EQ(report.apply_failures, 0u) << "fault_seed " << fault_seed;
    for (const SessionStats& s : report.sessions) {
      EXPECT_TRUE(s.completed);
      EXPECT_TRUE(s.converged);
    }
    // Chaos must actually bite: drops, retries and restarts all occurred
    // somewhere in the fleet, and convergence survived them.
    size_t dropped = 0;
    for (const SessionStats& s : report.sessions) dropped += s.wire.dropped;
    EXPECT_GT(dropped, 0u) << "fault_seed " << fault_seed;
    EXPECT_GT(report.retransmits + report.resync_replays, 0u)
        << "fault_seed " << fault_seed;
    EXPECT_EQ(report.ack_ms.count(), report.sessions.size() * report.epochs);
  }
}

TEST(RuntimeSoak, ReportBitIdenticalAcrossRunsAndThreadCounts) {
  const CompiledWorkload wl = soak_workload(3);
  const RuntimeReport serial = run_soak(wl, 3, 1);
  EXPECT_TRUE(serial.all_converged);

  for (size_t threads : {2ul, 8ul}) {
    const RuntimeReport threaded = run_soak(wl, 3, threads);
    expect_identical(serial, threaded);
  }
  // Same thread count, fresh run: still bit-identical.
  expect_identical(serial, run_soak(wl, 3, 8));
}

TEST(RuntimeSoak, AgentRestartsTriggerResyncAndStillConverge) {
  const CompiledWorkload wl = soak_workload(5);
  // Aggressive restarts, mild other faults: isolates the resync path.
  RuntimeConfig cfg;
  cfg.n_switches = 8;
  cfg.knobs.window = 4;
  cfg.n_threads = 8;
  cfg.knobs.faults.drop_p = 0.02;
  cfg.knobs.faults.delay_p = 0.10;
  cfg.knobs.faults.delay_ms = 3.0;
  cfg.knobs.faults.restart_every_ms = 40.0;
  cfg.fault_seed = 5;
  Controller controller(cfg);
  const RuntimeReport report = controller.run(wl.epochs, wl.final_rules);

  EXPECT_TRUE(report.all_converged);
  EXPECT_GT(report.restarts, 0u);
  EXPECT_GT(report.resyncs, 0u);
}

}  // namespace
}  // namespace ruletris
