// Wire codec round-trips and channel latency model.
#include <gtest/gtest.h>

#include "proto/channel.h"
#include "proto/codec.h"
#include "test_util.h"

namespace ruletris {
namespace {

using proto::Barrier;
using proto::DagUpdate;
using proto::decode_batch;
using proto::encode_batch;
using proto::FlowModAdd;
using proto::FlowModDelete;
using proto::FlowModModify;
using proto::Message;
using proto::MessageBatch;
using util::Rng;

TEST(Codec, EmptyBatch) {
  const MessageBatch batch;
  const auto decoded = decode_batch(encode_batch(batch));
  EXPECT_TRUE(decoded.empty());
}

TEST(Codec, RoundTripAllMessageTypes) {
  Rng rng(1);
  MessageBatch batch;
  batch.push_back(FlowModAdd{testutil::random_rule(rng, 42)});
  batch.push_back(FlowModDelete{777});
  batch.push_back(FlowModModify{testutil::random_rule(rng, -7)});
  dag::DagDelta delta;
  delta.removed_vertices = {1, 2};
  delta.removed_edges = {{3, 4}};
  delta.added_vertices = {5};
  delta.added_edges = {{5, 6}, {5, 7}};
  batch.push_back(DagUpdate{delta});
  batch.push_back(Barrier{});

  const auto decoded = decode_batch(encode_batch(batch));
  ASSERT_EQ(decoded.size(), batch.size());

  const auto& add = std::get<FlowModAdd>(decoded[0]);
  const auto& orig_add = std::get<FlowModAdd>(batch[0]);
  EXPECT_EQ(add.rule.id, orig_add.rule.id);
  EXPECT_EQ(add.rule.priority, orig_add.rule.priority);
  EXPECT_EQ(add.rule.match, orig_add.rule.match);
  EXPECT_EQ(add.rule.actions, orig_add.rule.actions);

  EXPECT_EQ(std::get<FlowModDelete>(decoded[1]).id, 777u);

  const auto& mod = std::get<FlowModModify>(decoded[2]);
  EXPECT_EQ(mod.rule.priority, -7);

  const auto& dag_update = std::get<DagUpdate>(decoded[3]);
  EXPECT_EQ(dag_update.delta.removed_vertices, delta.removed_vertices);
  EXPECT_EQ(dag_update.delta.removed_edges, delta.removed_edges);
  EXPECT_EQ(dag_update.delta.added_vertices, delta.added_vertices);
  EXPECT_EQ(dag_update.delta.added_edges, delta.added_edges);

  EXPECT_TRUE(std::holds_alternative<Barrier>(decoded[4]));
}

TEST(Codec, RandomRuleFuzzRoundTrip) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    MessageBatch batch;
    const int n = static_cast<int>(rng.next_below(6));
    for (int i = 0; i < n; ++i) {
      batch.push_back(FlowModAdd{testutil::random_rule(
          rng, static_cast<int32_t>(rng.next_below(1000)))});
    }
    const auto decoded = decode_batch(encode_batch(batch));
    ASSERT_EQ(decoded.size(), batch.size());
    for (int i = 0; i < n; ++i) {
      const auto& a = std::get<FlowModAdd>(batch[static_cast<size_t>(i)]).rule;
      const auto& b = std::get<FlowModAdd>(decoded[static_cast<size_t>(i)]).rule;
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.match, b.match);
      EXPECT_EQ(a.actions, b.actions);
      EXPECT_EQ(a.priority, b.priority);
    }
  }
}

TEST(Codec, TruncatedInputThrows) {
  Rng rng(3);
  MessageBatch batch{FlowModAdd{testutil::random_rule(rng, 1)}};
  auto bytes = encode_batch(batch);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_batch(bytes), std::runtime_error);
}

TEST(Codec, TrailingGarbageThrows) {
  auto bytes = encode_batch({});
  bytes.push_back(0xab);
  EXPECT_THROW(decode_batch(bytes), std::runtime_error);
}

TEST(Codec, UnknownTypeThrows) {
  proto::Bytes bytes = {1, 0, 0, 0, 0x7f};  // count=1, bogus type
  EXPECT_THROW(decode_batch(bytes), std::runtime_error);
}

TEST(ChannelModel, LatencyScalesWithSize) {
  proto::ChannelModel model;
  const double small = model.batch_latency_ms(1, 100);
  const double large = model.batch_latency_ms(100, 100000);
  EXPECT_GT(large, small);
  EXPECT_GE(small, model.per_batch_ms);
}

}  // namespace
}  // namespace ruletris
