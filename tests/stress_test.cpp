// Parameterized stress sweeps: long churn streams against both firmwares at
// several capacities and loads, with full semantic cross-checks. These are
// the failure-injection & endurance companions to the per-module suites.
#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "flowspace/rule.h"
#include "tcam/dag_scheduler.h"
#include "tcam/priority_firmware.h"
#include "test_util.h"
#include "util/logging.h"

namespace ruletris {
namespace {

using dag::build_min_dag;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using tcam::DagScheduler;
using tcam::PriorityFirmware;
using tcam::Tcam;
using util::Rng;

// (tcam capacity, fill fraction, rng seed)
using StressParam = std::tuple<size_t, double, uint64_t>;

class FirmwareStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(FirmwareStressTest, BothFirmwaresStayEquivalentUnderChurn) {
  const auto [capacity, fill, seed] = GetParam();
  util::set_log_level(util::LogLevel::kOff);
  Rng rng(seed);

  // A shared logical table drives both firmwares.
  const FlowTable fib{classbench::generate_router(capacity * 3, rng)};
  const auto graph = build_min_dag(fib);
  std::vector<RuleId> all;
  for (const Rule& r : fib.rules()) all.push_back(r.id);

  Tcam dag_tcam(capacity);
  DagScheduler dag_fw(dag_tcam);
  dag_fw.graph() = graph;
  Tcam prio_tcam(capacity);
  PriorityFirmware prio_fw(prio_tcam);

  // Fill both to the target load with the same subset. Install order:
  // dependencies first for the DAG firmware.
  std::vector<RuleId> cached;
  {
    std::unordered_set<RuleId> chosen;
    while (chosen.size() < static_cast<size_t>(fill * capacity)) {
      chosen.insert(all[rng.next_below(all.size())]);
    }
    for (RuleId id : graph.topo_order_high_to_low()) {
      if (!chosen.count(id)) continue;
      ASSERT_TRUE(dag_fw.insert(fib.rule(id)));
      ASSERT_TRUE(prio_fw.insert(fib.rule(id)));
      cached.push_back(id);
    }
  }

  size_t dag_writes = 0, prio_writes = 0;
  const auto dag_base = dag_tcam.stats().entry_writes;
  const auto prio_base = prio_tcam.stats().entry_writes;

  for (int step = 0; step < 300; ++step) {
    // Swap a random cached rule for a random uncached one. The DAG firmware
    // needs every dependency present, so swap in only rules whose direct
    // dependencies are cached or absent from both (consistent pair).
    const size_t out_idx = rng.next_below(cached.size());
    RuleId in = all[rng.next_below(all.size())];
    int guard = 0;
    bool viable = false;
    while (guard++ < 300) {
      in = all[rng.next_below(all.size())];
      if (dag_tcam.contains(in) || in == cached[out_idx]) continue;
      viable = true;
      break;
    }
    if (!viable) continue;

    dag_fw.remove(cached[out_idx]);
    prio_fw.remove(cached[out_idx]);
    // Re-register the vertex (remove() erased it from the firmware graph).
    dag_fw.graph().add_vertex(cached[out_idx]);
    for (RuleId succ : graph.successors(cached[out_idx])) {
      dag_fw.graph().add_edge(cached[out_idx], succ);
    }
    for (RuleId pred : graph.predecessors(cached[out_idx])) {
      dag_fw.graph().add_edge(pred, cached[out_idx]);
    }

    ASSERT_TRUE(dag_fw.insert(fib.rule(in)));
    ASSERT_TRUE(prio_fw.insert(fib.rule(in)));
    cached[out_idx] = in;

    ASSERT_TRUE(dag_fw.layout_valid());
    ASSERT_TRUE(prio_fw.layout_sorted());

    // Cross-equivalence on sampled traffic: both TCAMs hold the same rule
    // set, so every lookup must agree.
    for (int k = 0; k < 10; ++k) {
      flowspace::Packet p;
      p.set(flowspace::FieldId::kDstIp, rng.next_u32());
      const Rule* a = dag_tcam.lookup(p);
      const Rule* b = prio_tcam.lookup(p);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        ASSERT_EQ(a->id, b->id) << "firmwares diverged at step " << step;
      }
    }
  }

  dag_writes = dag_tcam.stats().entry_writes - dag_base;
  prio_writes = prio_tcam.stats().entry_writes - prio_base;
  // The whole point: same workload, strictly less TCAM work with the DAG.
  EXPECT_LE(dag_writes, prio_writes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FirmwareStressTest,
    ::testing::Values(StressParam{64, 0.7, 1}, StressParam{64, 0.9, 2},
                      StressParam{256, 0.8, 3}, StressParam{256, 0.95, 4},
                      StressParam{512, 0.9, 5}),
    [](const auto& info) {
      return "cap" + std::to_string(std::get<0>(info.param)) + "_fill" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

// DAG scheduler keeps working when the graph is a long chain (every rule
// depends on the next): worst case for chain search.
TEST(FirmwareStress, DeepDependencyChain) {
  util::set_log_level(util::LogLevel::kOff);
  constexpr size_t kDepth = 24;
  std::vector<Rule> rules;
  for (size_t i = 0; i < kDepth; ++i) {
    flowspace::TernaryMatch m;
    m.set_prefix(flowspace::FieldId::kDstIp, 0x0a000000,
                 static_cast<uint32_t>(8 + i));
    rules.push_back(Rule::make(m, flowspace::ActionList{flowspace::Action::forward(1)},
                               static_cast<int32_t>(kDepth - i)));
  }
  const FlowTable table{rules};
  const auto graph = build_min_dag(table);
  ASSERT_EQ(graph.edge_count(), kDepth - 1) << "must be a pure chain";

  Tcam tcam(kDepth + 2);
  DagScheduler scheduler(tcam);
  scheduler.graph() = graph;
  // Install most-general-first (reverse dependency order) to force maximal
  // repositioning pressure.
  for (size_t i = rules.size(); i-- > 0;) {
    ASSERT_TRUE(scheduler.insert(table.rules()[i]));
    ASSERT_TRUE(scheduler.layout_valid());
  }
  // Chain layout: every rule strictly above its dependant.
  for (size_t i = 0; i + 1 < table.rules().size(); ++i) {
    EXPECT_GT(tcam.address_of(table.rules()[i].id),
              tcam.address_of(table.rules()[i + 1].id));
  }
}

// Full-table torture: fill to 100%, then verify the scheduler fails cleanly
// and recovers after a delete.
TEST(FirmwareStress, FullTableFailThenRecover) {
  util::set_log_level(util::LogLevel::kOff);
  Rng rng(77);
  const FlowTable fib{classbench::generate_router(64, rng)};
  const auto graph = build_min_dag(fib);
  Tcam tcam(32);
  DagScheduler scheduler(tcam);
  scheduler.graph() = graph;

  std::vector<RuleId> installed;
  for (RuleId id : graph.topo_order_high_to_low()) {
    if (tcam.occupied() == tcam.capacity()) break;
    ASSERT_TRUE(scheduler.insert(fib.rule(id)));
    installed.push_back(id);
  }
  ASSERT_EQ(tcam.occupied(), tcam.capacity());

  // One more insert must fail without corrupting the layout.
  Rule extra = Rule::make(flowspace::TernaryMatch::wildcard(),
                          flowspace::ActionList{flowspace::Action::drop()}, 0);
  EXPECT_FALSE(scheduler.insert(extra));
  scheduler.remove(extra.id);
  EXPECT_TRUE(scheduler.layout_valid());

  // Delete something, and the same insert succeeds.
  scheduler.remove(installed.back());
  Rule retry = Rule::make(flowspace::TernaryMatch::wildcard(),
                          flowspace::ActionList{flowspace::Action::drop()}, 0);
  EXPECT_TRUE(scheduler.insert(retry));
  EXPECT_TRUE(scheduler.layout_valid());
}

}  // namespace
}  // namespace ruletris
