// MinDagMaintainer: exactness against the brute-force oracle under random
// update streams, plus rank-renumbering and bulk-load paths.
#include <gtest/gtest.h>

#include "dag/builder.h"
#include "dag/min_dag_maintainer.h"
#include "flowspace/rule.h"
#include "test_util.h"

namespace ruletris {
namespace {

using dag::build_min_dag;
using dag::MinDagMaintainer;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using util::Rng;

/// Test fixture keeping a priority-ordered shadow table; the maintainer's
/// comparator follows the shadow's priorities (ties: existing first).
struct Shadow {
  std::vector<Rule> rules;  // unsorted; FlowTable orders them

  FlowTable table() const { return FlowTable{rules}; }

  int32_t priority_of(RuleId id) const {
    for (const Rule& r : rules) {
      if (r.id == id) return r.priority;
    }
    throw std::out_of_range("shadow: unknown id");
  }
};

TEST(MinDagMaintainer, InsertStreamMatchesOracle) {
  Rng rng(31);
  for (int trial = 0; trial < 12; ++trial) {
    Shadow shadow;
    MinDagMaintainer dag([&shadow](RuleId existing, RuleId incoming) {
      return shadow.priority_of(existing) >= shadow.priority_of(incoming);
    });
    for (int step = 0; step < 30; ++step) {
      Rule r = testutil::random_rule(rng, 1 + static_cast<int>(rng.next_below(20)));
      shadow.rules.push_back(r);
      dag.insert(r.id, r.match);
      ASSERT_EQ(dag.graph(), build_min_dag(shadow.table()))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(MinDagMaintainer, MixedStreamMatchesOracle) {
  Rng rng(32);
  for (int trial = 0; trial < 8; ++trial) {
    Shadow shadow;
    MinDagMaintainer dag([&shadow](RuleId existing, RuleId incoming) {
      return shadow.priority_of(existing) >= shadow.priority_of(incoming);
    });
    for (int step = 0; step < 50; ++step) {
      if (!shadow.rules.empty() && rng.next_bool(0.4)) {
        const size_t pick = rng.next_below(shadow.rules.size());
        const RuleId id = shadow.rules[pick].id;
        dag.remove(id);
        shadow.rules.erase(shadow.rules.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        Rule r = testutil::random_rule(rng, 1 + static_cast<int>(rng.next_below(20)));
        shadow.rules.push_back(r);
        dag.insert(r.id, r.match);
      }
      ASSERT_EQ(dag.graph(), build_min_dag(shadow.table()))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(MinDagMaintainer, DeltasReplayConsistently) {
  Rng rng(33);
  Shadow shadow;
  MinDagMaintainer dag([&shadow](RuleId existing, RuleId incoming) {
    return shadow.priority_of(existing) >= shadow.priority_of(incoming);
  });
  dag::DependencyGraph replay;
  for (int step = 0; step < 60; ++step) {
    dag::DagDelta delta;
    if (!shadow.rules.empty() && rng.next_bool(0.4)) {
      const size_t pick = rng.next_below(shadow.rules.size());
      delta = dag.remove(shadow.rules[pick].id);
      shadow.rules.erase(shadow.rules.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      Rule r = testutil::random_rule(rng, 1 + static_cast<int>(rng.next_below(20)));
      shadow.rules.push_back(r);
      delta = dag.insert(r.id, r.match);
    }
    replay.apply(delta);
    ASSERT_EQ(replay, dag.graph()) << "delta replay diverged at step " << step;
  }
}

TEST(MinDagMaintainer, BulkLoadEqualsIncremental) {
  Rng rng(34);
  for (int trial = 0; trial < 10; ++trial) {
    Shadow shadow;
    for (int i = 0; i < 25; ++i) {
      shadow.rules.push_back(
          testutil::random_rule(rng, 1 + static_cast<int>(rng.next_below(20))));
    }
    const FlowTable table = shadow.table();

    MinDagMaintainer bulk([](RuleId, RuleId) { return true; });
    std::vector<std::pair<RuleId, TernaryMatch>> ordered;
    for (const Rule& r : table.rules()) ordered.emplace_back(r.id, r.match);
    bulk.bulk_load(ordered);

    ASSERT_EQ(bulk.graph(), build_min_dag(table));
    ASSERT_EQ(bulk.order().size(), table.size());
  }
}

TEST(MinDagMaintainer, OrderIsMaintained) {
  Shadow shadow;
  MinDagMaintainer dag([&shadow](RuleId existing, RuleId incoming) {
    return shadow.priority_of(existing) >= shadow.priority_of(incoming);
  });
  Rng rng(35);
  for (int i = 0; i < 40; ++i) {
    Rule r = testutil::random_rule(rng, 1 + static_cast<int>(rng.next_below(10)));
    shadow.rules.push_back(r);
    dag.insert(r.id, r.match);
  }
  const auto& order = dag.order();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(shadow.priority_of(order[i - 1]), shadow.priority_of(order[i]));
  }
}

TEST(MinDagMaintainer, RenumberUnderAdversarialInsertions) {
  // Repeatedly insert at the very front to exhaust rank gaps and force the
  // renumber path.
  std::vector<RuleId> ids;
  MinDagMaintainer dag([&ids](RuleId, RuleId) { return false; });  // always front
  TernaryMatch m;  // all rules overlap (wildcard) -> chain DAG
  for (int i = 0; i < 64; ++i) {
    const RuleId id = flowspace::next_rule_id();
    ids.push_back(id);
    dag.insert(id, m);
  }
  // Every later-inserted rule sits earlier; the DAG must be the chain
  // last-inserted <- ... <- first-inserted.
  ASSERT_EQ(dag.graph().edge_count(), ids.size() - 1);
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_TRUE(dag.graph().has_edge(ids[i], ids[i + 1]))
        << "identical matches must form a front-insertion chain";
  }
}

TEST(MinDagMaintainer, DuplicateInsertThrows) {
  MinDagMaintainer dag([](RuleId, RuleId) { return true; });
  dag.insert(7, TernaryMatch::wildcard());
  EXPECT_THROW(dag.insert(7, TernaryMatch::wildcard()), std::invalid_argument);
}

TEST(MinDagMaintainer, RemoveMissingIsNoop) {
  MinDagMaintainer dag([](RuleId, RuleId) { return true; });
  EXPECT_TRUE(dag.remove(42).empty());
}

}  // namespace
}  // namespace ruletris
