// ClassBench-style generator: structural properties the workloads rely on.
#include <gtest/gtest.h>

#include <unordered_set>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "flowspace/rule.h"
#include "test_util.h"

namespace ruletris {
namespace {

using classbench::generate_firewall;
using classbench::generate_monitor;
using classbench::generate_nat;
using classbench::generate_router;
using classbench::random_monitor_rule;
using classbench::random_nat_rule;
using flowspace::ActionType;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;
using flowspace::TernaryMatchHash;
using util::Rng;

TEST(Generator, RouterShapeAndDeterminism) {
  Rng rng1(1), rng2(1);
  const auto a = generate_router(200, rng1);
  const auto b = generate_router(200, rng2);
  ASSERT_EQ(a.size(), 200u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].match, b[i].match) << "generator must be deterministic";
  }
  // Distinct priorities, default route present, dst-only matches.
  std::unordered_set<int32_t> prios;
  bool has_default = false;
  for (const Rule& r : a) {
    EXPECT_TRUE(prios.insert(r.priority).second);
    if (r.match.is_wildcard()) has_default = true;
    for (auto f : {FieldId::kSrcIp, FieldId::kSrcPort, FieldId::kDstPort}) {
      EXPECT_EQ(r.match.field(f).mask, 0u) << "router matches only dst_ip";
    }
  }
  EXPECT_TRUE(has_default);
}

TEST(Generator, RouterIsLpmOrdered) {
  Rng rng(2);
  const FlowTable table{generate_router(150, rng)};
  uint32_t prev_bits = 33 * 32;
  for (const Rule& r : table.rules()) {
    const uint32_t bits = r.match.specified_bits();
    EXPECT_LE(bits, prev_bits) << "longer prefixes must be matched first";
    prev_bits = bits;
  }
}

TEST(Generator, RouterHasNestingDependencies) {
  Rng rng(3);
  const FlowTable table{generate_router(150, rng)};
  const auto graph = dag::build_min_dag(table);
  // Nested prefixes + the default route guarantee real dependencies.
  EXPECT_GT(graph.edge_count(), 20u);
}

TEST(Generator, MonitorShape) {
  Rng rng(4);
  const auto rules = generate_monitor(100, rng);
  ASSERT_EQ(rules.size(), 100u);
  // The last rule is the match-all no-op default (total member function).
  EXPECT_TRUE(rules.back().match.is_wildcard());
  EXPECT_TRUE(rules.back().actions.empty());
  std::unordered_set<TernaryMatch, TernaryMatchHash> matches;
  for (size_t i = 0; i + 1 < rules.size(); ++i) {
    const Rule& r = rules[i];
    EXPECT_TRUE(matches.insert(r.match).second) << "matches must be unique";
    EXPECT_TRUE(r.actions.contains(ActionType::kCount));
    EXPECT_LT(r.priority, 8192) << "priorities must stay within CoVisor sequential width";
  }
}

TEST(Generator, FirewallMixesAcceptAndDrop) {
  Rng rng(5);
  const auto rules = generate_firewall(100, rng);
  size_t drops = 0, accepts = 0;
  for (const Rule& r : rules) {
    if (r.actions.contains(ActionType::kDrop)) ++drops;
    if (r.actions.contains(ActionType::kForward)) ++accepts;
  }
  EXPECT_GT(drops, 10u);
  EXPECT_GT(accepts, 10u);
}

TEST(Generator, NatRewritesIntoRouterPrefixes) {
  Rng rng(6);
  const auto router = generate_router(100, rng);
  const auto nat = generate_nat(50, router, rng);
  ASSERT_EQ(nat.size(), 50u);
  // Default passthrough present.
  EXPECT_TRUE(nat.back().match.is_wildcard());
  EXPECT_TRUE(nat.back().actions.empty());

  const FlowTable router_table{router};
  size_t checked = 0;
  for (const Rule& r : nat) {
    auto mods = r.actions.set_fields();
    for (const auto& mod : mods) {
      if (mod.field != FieldId::kDstIp) continue;
      // The translated address must land inside some non-default router rule
      // (the generator samples from their prefixes).
      flowspace::Packet p;
      p.set(FieldId::kDstIp, mod.arg);
      const Rule* hit = router_table.lookup(p);
      ASSERT_NE(hit, nullptr);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(Generator, UpdateStreamRulesResembleTables) {
  Rng rng(7);
  const auto router = generate_router(50, rng);
  for (int i = 0; i < 50; ++i) {
    const Rule m = random_monitor_rule(100, rng);
    EXPECT_GT(m.priority, 0);
    const Rule n = random_nat_rule(router, 100, rng);
    EXPECT_EQ(n.match.field(FieldId::kDstIp).mask, 0xffffffffu)
        << "NAT matches an exact public address";
    EXPECT_FALSE(n.actions.set_fields().empty());
  }
}

}  // namespace
}  // namespace ruletris
