// Policy expression parser.
#include <gtest/gtest.h>

#include "compiler/policy_parser.h"

namespace ruletris {
namespace {

using compiler::parse_policy;
using compiler::policy_to_string;
using compiler::PolicyParseError;
using compiler::PolicySpec;

TEST(PolicyParser, SingleLeaf) {
  const PolicySpec spec = parse_policy("router");
  EXPECT_TRUE(spec.is_leaf);
  EXPECT_EQ(spec.leaf_name, "router");
}

TEST(PolicyParser, Operators) {
  EXPECT_EQ(policy_to_string(parse_policy("a + b")), "(a + b)");
  EXPECT_EQ(policy_to_string(parse_policy("a > b")), "(a > b)");
  EXPECT_EQ(policy_to_string(parse_policy("a $ b")), "(a $ b)");
}

TEST(PolicyParser, SequentialBindsTighter) {
  EXPECT_EQ(policy_to_string(parse_policy("a + b > c")), "(a + (b > c))");
  EXPECT_EQ(policy_to_string(parse_policy("a > b $ c")), "((a > b) $ c)");
}

TEST(PolicyParser, LeftAssociativity) {
  EXPECT_EQ(policy_to_string(parse_policy("a + b + c")), "((a + b) + c)");
  EXPECT_EQ(policy_to_string(parse_policy("a > b > c")), "((a > b) > c)");
  EXPECT_EQ(policy_to_string(parse_policy("a + b $ c")), "((a + b) $ c)");
}

TEST(PolicyParser, ParenthesesOverride) {
  EXPECT_EQ(policy_to_string(parse_policy("(a + b) > c")), "((a + b) > c)");
  EXPECT_EQ(policy_to_string(parse_policy("((a))")), "a");
}

TEST(PolicyParser, WhitespaceAndIdentifiers) {
  const PolicySpec spec = parse_policy("  monitor_v2+router-east  ");
  ASSERT_FALSE(spec.is_leaf);
  EXPECT_EQ(spec.left->leaf_name, "monitor_v2");
  EXPECT_EQ(spec.right->leaf_name, "router-east");
}

TEST(PolicyParser, LeafNamesCollected) {
  const auto names = parse_policy("(a + b) $ (c > d)").leaf_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[3], "d");
}

TEST(PolicyParser, Errors) {
  EXPECT_THROW(parse_policy(""), PolicyParseError);
  EXPECT_THROW(parse_policy("a +"), PolicyParseError);
  EXPECT_THROW(parse_policy("(a + b"), PolicyParseError);
  EXPECT_THROW(parse_policy("a b"), PolicyParseError);
  EXPECT_THROW(parse_policy("+ a"), PolicyParseError);
  EXPECT_THROW(parse_policy("a * b"), PolicyParseError);
  try {
    parse_policy("(a + ");
    FAIL() << "expected PolicyParseError";
  } catch (const PolicyParseError& e) {
    EXPECT_GT(e.position(), 0u);
  }
}

}  // namespace
}  // namespace ruletris
