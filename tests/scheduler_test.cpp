// DAG update scheduler (Algorithm 1): paper examples, layout validity under
// random update streams, and move-count optimality against an exhaustive
// BFS oracle on small instances (Claim 1).
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>

#include "dag/builder.h"
#include "util/logging.h"
#include "tcam/dag_scheduler.h"
#include "test_util.h"

namespace ruletris {
namespace {

using dag::DependencyGraph;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using tcam::DagScheduler;
using tcam::Tcam;
using util::Rng;

Rule make_rule(uint32_t tag) {
  TernaryMatch m;
  m.set_exact(FieldId::kDstPort, tag);
  return Rule::make(m, ActionList{Action::forward(1)}, 0);
}

/// Exhaustive minimum-move oracle: BFS over TCAM layouts; a transition moves
/// one entry to a free slot keeping every DAG edge satisfied; the goal is a
/// layout with a DAG-feasible free slot for `insert_id`.
int oracle_min_moves(const Tcam& tcam, const DependencyGraph& graph, RuleId insert_id) {
  const size_t cap = tcam.capacity();
  std::vector<RuleId> initial(cap, 0);
  for (size_t a = 0; a < cap; ++a) {
    if (auto id = tcam.at(a)) initial[a] = *id;
  }
  auto encode = [](const std::vector<RuleId>& s) {
    std::string key;
    for (RuleId id : s) key += std::to_string(id) + ",";
    return key;
  };
  auto valid = [&](const std::vector<RuleId>& s) {
    std::map<RuleId, size_t> pos;
    for (size_t a = 0; a < s.size(); ++a) {
      if (s[a] != 0) pos[s[a]] = a;
    }
    for (const auto& [u, v] : graph.edges()) {
      if (u == insert_id || v == insert_id) continue;  // not installed yet
      auto pu = pos.find(u);
      auto pv = pos.find(v);
      if (pu == pos.end() || pv == pos.end()) continue;
      if (pv->second <= pu->second) return false;
    }
    return true;
  };
  auto goal = [&](const std::vector<RuleId>& s) {
    std::map<RuleId, size_t> pos;
    for (size_t a = 0; a < s.size(); ++a) {
      if (s[a] != 0) pos[s[a]] = a;
    }
    for (size_t f = 0; f < s.size(); ++f) {
      if (s[f] != 0) continue;
      bool ok = true;
      for (RuleId succ : graph.successors(insert_id)) {
        auto it = pos.find(succ);
        if (it != pos.end() && it->second <= f) ok = false;
      }
      for (RuleId pred : graph.predecessors(insert_id)) {
        auto it = pos.find(pred);
        if (it != pos.end() && it->second >= f) ok = false;
      }
      if (ok) return true;
    }
    return false;
  };

  std::map<std::string, int> dist;
  std::deque<std::vector<RuleId>> queue{initial};
  dist[encode(initial)] = 0;
  while (!queue.empty()) {
    auto state = queue.front();
    queue.pop_front();
    const int d = dist[encode(state)];
    if (goal(state)) return d;
    if (d >= 6) continue;  // depth cap keeps the oracle tractable
    for (size_t from = 0; from < cap; ++from) {
      if (state[from] == 0) continue;
      for (size_t to = 0; to < cap; ++to) {
        if (state[to] != 0) continue;
        auto next = state;
        std::swap(next[from], next[to]);
        if (!valid(next)) continue;
        const std::string key = encode(next);
        if (dist.count(key)) continue;
        dist[key] = d + 1;
        queue.push_back(next);
      }
    }
  }
  return -1;  // unreachable within the cap
}

TEST(DagScheduler, PaperFig2InsertTakesTwoMoves) {
  // TCAM layout (top = address 5): rules 1,2,3,4,5 and one free slot at the
  // bottom. DAG edges as derived in Fig. 2(c); rule 6 (0*0) overlaps rule 1
  // (00*), rule 2 (**0), rule 5 (***): 6 depends on 1, and 2 depends on 6
  // (6 is inserted between 1 and 2), 5 depends transitively.
  Tcam tcam(6);
  std::vector<Rule> rules;
  for (uint32_t i = 1; i <= 5; ++i) rules.push_back(make_rule(i));
  // Address layout: 1 at 5 (top), 2 at 4, 3 at 3, 4 at 2, 5 at 1; slot 0 free.
  DependencyGraph g;
  // Fig. 2(c) dependencies among existing rules.
  g.add_edge(rules[1].id, rules[0].id);  // 2 -> 1
  g.add_edge(rules[2].id, rules[0].id);  // 3 -> 1
  g.add_edge(rules[3].id, rules[2].id);  // 4 -> 3
  g.add_edge(rules[4].id, rules[1].id);  // 5 -> 2
  g.add_edge(rules[4].id, rules[3].id);  // 5 -> 4
  tcam.write(5, rules[0]);
  tcam.write(4, rules[1]);
  tcam.write(3, rules[2]);
  tcam.write(2, rules[3]);
  tcam.write(1, rules[4]);
  // Scheduler's occupancy was initialized before the writes; rebuild.
  DagScheduler fresh(tcam);
  fresh.graph() = g;

  // Rule 6 = 0*0: depends on rule 1; rules 2 and 5 depend on it.
  Rule r6 = make_rule(6);
  fresh.graph().add_vertex(r6.id);
  fresh.graph().add_edge(r6.id, rules[0].id);
  fresh.graph().add_edge(rules[1].id, r6.id);
  fresh.graph().add_edge(rules[4].id, r6.id);

  ASSERT_TRUE(fresh.insert(r6));
  // Fig. 2(c): only rules 2 and 5 move (the priority-based plan needs 4).
  EXPECT_EQ(fresh.last_chain_moves(), 2u);
  EXPECT_TRUE(fresh.layout_valid());
  // Rule 6 must sit below rule 1 and above rules 2 and 5.
  EXPECT_LT(tcam.address_of(r6.id), tcam.address_of(rules[0].id));
  EXPECT_GT(tcam.address_of(r6.id), tcam.address_of(rules[1].id));
}

TEST(DagScheduler, InsertIntoFreeRangeCostsOneWrite) {
  Tcam tcam(8);
  DagScheduler scheduler(tcam);
  Rule r = make_rule(1);
  scheduler.graph().add_vertex(r.id);
  const auto before = tcam.stats();
  ASSERT_TRUE(scheduler.insert(r));
  EXPECT_EQ(tcam.stats().entry_writes - before.entry_writes, 1u);
  EXPECT_EQ(scheduler.last_chain_moves(), 0u);
}

TEST(DagScheduler, FullTcamRejectsInsert) {
  Tcam tcam(2);
  DagScheduler scheduler(tcam);
  ASSERT_TRUE(scheduler.insert(make_rule(1)));
  ASSERT_TRUE(scheduler.insert(make_rule(2)));
  util::set_log_level(util::LogLevel::kOff);
  EXPECT_FALSE(scheduler.insert(make_rule(3)));
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(DagScheduler, RemoveFreesSlot) {
  Tcam tcam(4);
  DagScheduler scheduler(tcam);
  Rule r = make_rule(1);
  ASSERT_TRUE(scheduler.insert(r));
  scheduler.remove(r.id);
  EXPECT_FALSE(tcam.contains(r.id));
  EXPECT_FALSE(scheduler.graph().has_vertex(r.id));
  EXPECT_EQ(tcam.occupied(), 0u);
}

/// Random tables installed rule-by-rule: the layout must respect the DAG at
/// every step, and lookups must match the priority-table semantics.
TEST(DagScheduler, RandomStreamKeepsLayoutValidAndSemanticsIntact) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 10 + static_cast<int>(rng.next_below(10));
    std::vector<Rule> rules;
    for (int i = 0; i < n; ++i) {
      rules.push_back(testutil::random_rule(rng, n - i));
    }
    FlowTable table{rules};
    const DependencyGraph min_dag = dag::build_min_dag(table);

    Tcam tcam(static_cast<size_t>(n + n / 4 + 1));
    DagScheduler scheduler(tcam);
    scheduler.graph() = min_dag;
    // Install in matched-first order (dependencies first).
    for (RuleId id : min_dag.topo_order_high_to_low()) {
      ASSERT_TRUE(scheduler.insert(table.rule(id)));
      ASSERT_TRUE(scheduler.layout_valid());
    }
    // TCAM lookup == priority-table lookup.
    for (int k = 0; k < 200; ++k) {
      const auto p = testutil::random_packet(rng);
      const Rule* expect = table.lookup(p);
      const Rule* got = tcam.lookup(p);
      ASSERT_EQ(expect == nullptr, got == nullptr);
      if (expect != nullptr) {
        EXPECT_EQ(expect->id, got->id);
      }
    }
    // Random deletes keep everything valid.
    for (int k = 0; k < 5 && !table.empty(); ++k) {
      const auto& alive = table.rules();
      const RuleId victim = alive[rng.next_below(alive.size())].id;
      scheduler.remove(victim);
      table.erase(victim);
      ASSERT_TRUE(scheduler.layout_valid());
    }
  }
}

/// Claim 1: the scheduler's chain length equals the exhaustive minimum on
/// random small instances.
TEST(DagScheduler, MoveCountMatchesExhaustiveOracle) {
  Rng rng(13);
  int exercised = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(3));  // 4-6 rules
    std::vector<Rule> rules;
    for (int i = 0; i <= n; ++i) {
      rules.push_back(testutil::random_rule(rng, n + 1 - i));
    }
    FlowTable table{rules};
    const DependencyGraph min_dag = dag::build_min_dag(table);

    // Capacity n+1: exactly one free slot once n rules are in.
    Tcam tcam(static_cast<size_t>(n + 1));
    DagScheduler scheduler(tcam);
    scheduler.graph() = min_dag;

    // Install all but the last-priority rule, then insert it and compare.
    const auto order = min_dag.topo_order_high_to_low();
    const RuleId last = order.back();
    bool ok = true;
    for (RuleId id : order) {
      if (id == last) continue;
      if (!scheduler.insert(table.rule(id))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    const int oracle = oracle_min_moves(tcam, min_dag, last);
    ASSERT_TRUE(scheduler.insert(table.rule(last)));
    ASSERT_TRUE(scheduler.layout_valid());
    ASSERT_GE(oracle, 0) << "oracle must reach a goal when the scheduler can";
    EXPECT_EQ(static_cast<int>(scheduler.last_chain_moves()), oracle)
        << "trial " << trial;
    ++exercised;
  }
  EXPECT_GT(exercised, 30);
}

/// The O(n)-degree hotspot: every rule depends on one default rule, so the
/// default's dependency fan-out is the whole table. The chain length must
/// still match the exhaustive minimum (Claim 1 does not degrade with
/// degree), whichever search implementation runs.
TEST(DagScheduler, MoveCountMatchesOracleOnDefaultRuleStar) {
  Rng rng(17);
  int exercised = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 4 + rng.next_below(3);  // specific rules
    std::vector<Rule> specifics;
    for (size_t i = 0; i < n; ++i) {
      specifics.push_back(make_rule(static_cast<uint32_t>(100 + i)));
    }
    const Rule def = make_rule(1);      // the default: depends on everyone
    const Rule probe = make_rule(2);    // inserted last, between def and one specific

    DependencyGraph g;
    for (const Rule& s : specifics) g.add_edge(def.id, s.id);
    g.add_edge(def.id, probe.id);
    // probe must also sit below one random specific (a tight range).
    g.add_edge(probe.id, specifics[rng.next_below(n)].id);

    Tcam tcam(n + 2);  // one free slot once everything but `probe` is in
    DagScheduler scheduler(tcam);
    scheduler.graph() = g;
    for (const Rule& s : specifics) ASSERT_TRUE(scheduler.insert(s));
    ASSERT_TRUE(scheduler.insert(def));

    const int oracle = oracle_min_moves(tcam, g, probe.id);
    if (!scheduler.insert(probe)) continue;  // range collapsed: skip trial
    ASSERT_TRUE(scheduler.layout_valid());
    ASSERT_GE(oracle, 0);
    EXPECT_EQ(static_cast<int>(scheduler.last_chain_moves()), oracle)
        << "trial " << trial;
    ++exercised;
  }
  EXPECT_GT(exercised, 10);
}

/// evict() is the CacheFlow-style primitive: the TCAM entry goes away, the
/// vertex and its edges stay, and a reinsert honours the same bounds.
TEST(DagScheduler, EvictKeepsGraphAndReinsertHonoursBounds) {
  Tcam tcam(8);
  DagScheduler scheduler(tcam);
  Rule top = make_rule(1);
  Rule mid = make_rule(2);
  Rule bot = make_rule(3);
  scheduler.graph().add_edge(mid.id, top.id);  // mid below top
  scheduler.graph().add_edge(bot.id, mid.id);  // bot below mid
  ASSERT_TRUE(scheduler.insert(top));
  ASSERT_TRUE(scheduler.insert(mid));
  ASSERT_TRUE(scheduler.insert(bot));

  ASSERT_TRUE(scheduler.evict(mid.id));
  EXPECT_FALSE(tcam.contains(mid.id));
  EXPECT_TRUE(scheduler.graph().has_vertex(mid.id));
  EXPECT_FALSE(scheduler.evict(mid.id)) << "double evict must report false";

  ASSERT_TRUE(scheduler.insert(mid));
  EXPECT_TRUE(scheduler.layout_valid());
  EXPECT_GT(tcam.address_of(mid.id), tcam.address_of(bot.id));
  EXPECT_LT(tcam.address_of(mid.id), tcam.address_of(top.id));
}

}  // namespace
}  // namespace ruletris
