// Whole-pipeline integration: deep policy trees, churn on every leaf,
// redundancy-eliminated installation, and the parsed-policy entry path.
#include <gtest/gtest.h>

#include <map>

#include "classbench/generator.h"
#include "compiler/baseline.h"
#include "compiler/policy_parser.h"
#include "compiler/ruletris_compiler.h"
#include "dag/builder.h"
#include "switchsim/adapters.h"
#include "switchsim/switch.h"
#include "tcam/redundancy.h"
#include "test_util.h"
#include "util/logging.h"

namespace ruletris {
namespace {

using compiler::parse_policy;
using compiler::PolicySpec;
using compiler::RuleTrisCompiler;
using compiler::TableUpdate;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using switchsim::FirmwareMode;
using switchsim::SimulatedSwitch;
using switchsim::to_messages;
using testutil::random_rule;
using util::Rng;

std::vector<Rule> random_table_rules(Rng& rng, int n) {
  std::vector<Rule> rules;
  for (int i = 0; i < n; ++i) {
    rules.push_back(random_rule(rng, 1 + static_cast<int>(rng.next_below(30))));
  }
  return rules;
}

/// Root visible state must stay oracle-exact and reference-equivalent.
void validate_root(RuleTrisCompiler& compiler, const PolicySpec& spec,
                   const std::map<std::string, FlowTable>& tables, Rng& rng) {
  const auto visible = compiler.root().visible_rules_in_order();
  const auto reference = compiler::compose_from_scratch(spec, tables);
  ASSERT_EQ(visible.size(), reference.size());
  ASSERT_TRUE(testutil::semantically_equal(visible, reference, rng, 300));
  ASSERT_EQ(compiler.root().visible_graph(), dag::build_min_dag(FlowTable{visible}));
}

TEST(Integration, DeepTreeWithChurnOnEveryLeaf) {
  Rng rng(404);
  for (int trial = 0; trial < 2; ++trial) {
    std::map<std::string, FlowTable> tables;
    for (const char* name : {"mon", "fw", "router", "fallback"}) {
      tables.emplace(name, FlowTable{random_table_rules(rng, 4)});
    }
    // ((mon + fw) > router) $ fallback — every operator in one tree.
    const PolicySpec spec = parse_policy("(mon + fw) > router $ fallback");
    RuleTrisCompiler compiler(spec, tables);
    validate_root(compiler, spec, tables, rng);

    std::map<std::string, std::vector<RuleId>> live;
    for (const auto& [name, table] : tables) {
      for (const Rule& r : table.rules()) live[name].push_back(r.id);
    }

    const char* leaves[] = {"mon", "fw", "router", "fallback"};
    for (int step = 0; step < 24; ++step) {
      const char* leaf = leaves[rng.next_below(4)];
      auto& ids = live[leaf];
      if (!ids.empty() && rng.next_bool(0.45)) {
        const size_t pick = rng.next_below(ids.size());
        compiler.remove(leaf, ids[pick]);
        tables.at(leaf).erase(ids[pick]);
        ids.erase(ids.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        Rule r = random_rule(rng, 1 + static_cast<int>(rng.next_below(30)));
        ids.push_back(r.id);
        tables.at(leaf).insert(r);
        compiler.insert(leaf, std::move(r));
      }
      validate_root(compiler, spec, tables, rng);
    }
  }
}

TEST(Integration, UpdatesStreamedToSwitchStayConsistent) {
  util::set_log_level(util::LogLevel::kOff);
  Rng rng(505);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{classbench::generate_monitor(20, rng)});
  tables.emplace("router", FlowTable{classbench::generate_router(60, rng)});
  const PolicySpec spec = parse_policy("mon + router");
  RuleTrisCompiler compiler(spec, tables);

  SimulatedSwitch sw(FirmwareMode::kDag, 256);
  {
    TableUpdate initial;
    initial.added = compiler.root().visible_rules_in_order();
    for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
    initial.dag.added_edges = compiler.root().visible_graph().edges();
    ASSERT_TRUE(sw.deliver(to_messages(initial)).ok);
  }

  std::vector<RuleId> live;
  for (const Rule& r : tables.at("mon").rules()) live.push_back(r.id);

  for (int step = 0; step < 40; ++step) {
    const size_t pick = rng.next_below(live.size());
    const Rule fresh = classbench::random_monitor_rule(20, rng);
    ASSERT_TRUE(sw.deliver(to_messages(compiler.remove("mon", live[pick]))).ok);
    ASSERT_TRUE(sw.deliver(to_messages(compiler.insert("mon", fresh))).ok);
    live[pick] = fresh.id;

    // The switch's TCAM must mirror the compiler's visible table exactly.
    ASSERT_TRUE(sw.dag_firmware().layout_valid());
    const auto visible = compiler.root().visible_rules_in_order();
    ASSERT_EQ(sw.tcam().occupied(), visible.size());
    for (int k = 0; k < 50; ++k) {
      const auto p = testutil::random_packet(rng);
      const Rule* truth = testutil::lookup_ordered(visible, p);
      const Rule* got = sw.tcam().lookup(p);
      ASSERT_EQ(truth == nullptr, got == nullptr);
      if (truth != nullptr) {
        ASSERT_EQ(truth->id, got->id) << "switch diverged at step " << step;
      }
    }
  }
}

TEST(Integration, RedundancyEliminatedInstallIsEquivalentAndSmaller) {
  Rng rng(606);
  std::map<std::string, FlowTable> tables;
  tables.emplace("fw", FlowTable{classbench::generate_firewall(30, rng)});
  tables.emplace("router", FlowTable{classbench::generate_router(50, rng)});
  const PolicySpec spec = parse_policy("fw + router");
  RuleTrisCompiler compiler(spec, tables);

  const auto full = compiler.root().visible_rules_in_order();
  const auto reduced =
      tcam::eliminate_redundancy(full, compiler.root().visible_graph());
  EXPECT_LE(reduced.kept.size(), full.size());

  // Equivalent semantics, and the reduced DAG installs cleanly.
  for (int k = 0; k < 400; ++k) {
    const auto p = testutil::random_packet(rng);
    const Rule* a = testutil::lookup_ordered(full, p);
    const Rule* b = testutil::lookup_ordered(reduced.kept, p);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      ASSERT_EQ(a->actions, b->actions);
    }
  }

  SimulatedSwitch sw(FirmwareMode::kDag, reduced.kept.size() + 32);
  TableUpdate initial;
  initial.added = reduced.kept;
  for (const Rule& r : reduced.kept) initial.dag.added_vertices.push_back(r.id);
  initial.dag.added_edges = reduced.graph.edges();
  ASSERT_TRUE(sw.deliver(to_messages(initial)).ok);
  ASSERT_TRUE(sw.dag_firmware().layout_valid());
  for (int k = 0; k < 200; ++k) {
    const auto p = testutil::random_packet(rng);
    const Rule* truth = testutil::lookup_ordered(reduced.kept, p);
    const Rule* got = sw.tcam().lookup(p);
    ASSERT_EQ(truth == nullptr, got == nullptr);
    if (truth != nullptr) {
      ASSERT_EQ(truth->id, got->id);
    }
  }
}

TEST(Integration, ParsedPolicyDrivesThePipeline) {
  Rng rng(707);
  std::map<std::string, FlowTable> tables;
  tables.emplace("a", FlowTable{random_table_rules(rng, 5)});
  tables.emplace("b", FlowTable{random_table_rules(rng, 5)});
  tables.emplace("c", FlowTable{random_table_rules(rng, 5)});

  // The same policy expressed textually and programmatically must produce
  // identical compositions.
  const PolicySpec parsed = parse_policy("a + b $ c");
  const PolicySpec built = PolicySpec::priority(
      PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b")),
      PolicySpec::leaf("c"));
  RuleTrisCompiler from_text(parsed, tables);
  RuleTrisCompiler from_code(built, tables);
  EXPECT_TRUE(testutil::semantically_equal(from_text.root().visible_rules_in_order(),
                                           from_code.root().visible_rules_in_order(),
                                           rng));
}

}  // namespace
}  // namespace ruletris
