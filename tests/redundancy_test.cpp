// Redundancy eliminator (Sec. V-B, Claim 2): obscured and floating rule
// removal with semantic preservation.
#include <gtest/gtest.h>

#include "dag/builder.h"
#include "tcam/redundancy.h"
#include "test_util.h"

namespace ruletris {
namespace {

using dag::build_min_dag;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;
using tcam::eliminate_redundancy;
using testutil::lookup_ordered;
using util::Rng;

TEST(RedundancyEliminator, RemovesObscuredRule) {
  // A narrow rule hidden beneath an identical-space higher rule.
  TernaryMatch wide, narrow;
  wide.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  narrow.set_prefix(FieldId::kDstIp, 0x0a0a0000, 16);
  std::vector<Rule> rules;
  rules.push_back(Rule::make(wide, ActionList{Action::forward(1)}, 20));
  rules.push_back(Rule::make(narrow, ActionList{Action::drop()}, 10));  // obscured
  FlowTable table{rules};
  const auto result = eliminate_redundancy(table.rules(), build_min_dag(table));
  ASSERT_EQ(result.obscured.size(), 1u);
  EXPECT_EQ(result.obscured[0], rules[1].id);
  EXPECT_EQ(result.kept.size(), 1u);
}

TEST(RedundancyEliminator, RemovesFloatingRule) {
  // Narrow high-priority rule with the same action as the general rule
  // right below it: the narrow one adds nothing (paper's floating rule).
  TernaryMatch wide, narrow;
  wide.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  narrow.set_prefix(FieldId::kDstIp, 0x0a0a0000, 16);
  std::vector<Rule> rules;
  rules.push_back(Rule::make(narrow, ActionList{Action::forward(1)}, 20));  // floating
  rules.push_back(Rule::make(wide, ActionList{Action::forward(1)}, 10));
  FlowTable table{rules};
  const auto result = eliminate_redundancy(table.rules(), build_min_dag(table));
  ASSERT_EQ(result.floating.size(), 1u);
  EXPECT_EQ(result.floating[0], rules[0].id);
  EXPECT_EQ(result.kept.size(), 1u);
  EXPECT_EQ(result.kept[0].id, rules[1].id);
}

TEST(RedundancyEliminator, KeepsFloatingCandidateWhoseFallthroughDiffers) {
  // narrow would be floating w.r.t. wide (same action, more general), but
  // its direct fall-through is the different-action `mid` rule in between:
  // removing narrow would drop packets that should be forwarded.
  TernaryMatch wide, narrow, mid;
  narrow.set_prefix(FieldId::kDstIp, 0x0a000000, 8).set_exact(FieldId::kDstPort, 80);
  mid.set_exact(FieldId::kDstPort, 80);             // covers narrow, drops
  wide.set_prefix(FieldId::kDstIp, 0x0a000000, 8);  // same action as narrow
  std::vector<Rule> rules;
  rules.push_back(Rule::make(narrow, ActionList{Action::forward(1)}, 30));
  rules.push_back(Rule::make(mid, ActionList{Action::drop()}, 20));
  rules.push_back(Rule::make(wide, ActionList{Action::forward(1)}, 10));
  FlowTable table{rules};
  const auto result = eliminate_redundancy(table.rules(), build_min_dag(table));
  EXPECT_TRUE(result.floating.empty());
  EXPECT_TRUE(result.obscured.empty());
  EXPECT_EQ(result.kept.size(), 3u);
}

TEST(RedundancyEliminator, NoFalsePositivesOnCleanTable) {
  TernaryMatch a, b;
  a.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  b.set_prefix(FieldId::kDstIp, 0x0b000000, 8);
  std::vector<Rule> rules;
  rules.push_back(Rule::make(a, ActionList{Action::forward(1)}, 2));
  rules.push_back(Rule::make(b, ActionList{Action::forward(2)}, 1));
  FlowTable table{rules};
  const auto result = eliminate_redundancy(table.rules(), build_min_dag(table));
  EXPECT_TRUE(result.obscured.empty());
  EXPECT_TRUE(result.floating.empty());
  EXPECT_EQ(result.kept.size(), 2u);
}

/// Property (Claim 2): elimination never changes classification, the output
/// contains no obscured rule, and the patched DAG stays sufficient.
TEST(RedundancyEliminator, SemanticsPreservedOnRandomTables) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Rule> rules;
    const int n = 6 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < n; ++i) {
      rules.push_back(testutil::random_rule(rng, n - i));
    }
    FlowTable table{rules};
    const auto graph = build_min_dag(table);
    const auto result = eliminate_redundancy(table.rules(), graph);

    EXPECT_EQ(result.kept.size() + result.obscured.size() + result.floating.size(),
              table.size());

    // Classification unchanged (by action, since floating removal may hand
    // packets to an equal-action rule).
    for (int k = 0; k < 300; ++k) {
      const auto p = testutil::random_packet(rng);
      const Rule* expect = table.lookup(p);
      const Rule* got = lookup_ordered(result.kept, p);
      ASSERT_EQ(expect == nullptr, got == nullptr);
      if (expect != nullptr) {
        EXPECT_EQ(expect->actions, got->actions);
      }
    }

    // No rule in the output is obscured by the ones before it.
    std::vector<TernaryMatch> above;
    for (const Rule& r : result.kept) {
      EXPECT_FALSE(flowspace::is_covered_by(r.match, above))
          << "output still contains an obscured rule";
      above.push_back(r.match);
    }

    // The patched DAG still orders the kept rules correctly.
    for (int reorder = 0; reorder < 3; ++reorder) {
      const auto layout =
          testutil::random_dag_linearization(result.kept, result.graph, rng);
      ASSERT_EQ(layout.size(), result.kept.size());
      for (int k = 0; k < 150; ++k) {
        const auto p = testutil::random_packet(rng);
        const Rule* expect = lookup_ordered(result.kept, p);
        const Rule* got = lookup_ordered(layout, p);
        ASSERT_EQ(expect == nullptr, got == nullptr);
        if (expect != nullptr) {
          EXPECT_EQ(expect->actions, got->actions);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ruletris
