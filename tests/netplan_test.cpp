// Tests for the network-wide consistent-update planner: topology model,
// per-switch projection, round-count optimality on hand-built topologies,
// per-packet consistency across every round boundary (property-tested over
// random topologies x policies x seeds), the inconsistent one-shot baseline
// the auditor must catch, and the fleet-gated runtime integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "classbench/generator.h"
#include "compiler/policy_spec.h"
#include "flowspace/action.h"
#include "flowspace/rule.h"
#include "netplan/auditor.h"
#include "netplan/fleet.h"
#include "netplan/materialize.h"
#include "netplan/planner.h"
#include "netplan/policy.h"
#include "netplan/topology.h"
#include "proto/codec.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/workload.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using compiler::PolicySpec;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::ActionType;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::TernaryMatch;
using netplan::AuditConfig;
using netplan::ConsistencyAuditor;
using netplan::Flow;
using netplan::FlowForm;
using netplan::kHostPort;
using netplan::kVersionTagBase;
using netplan::LookupFn;
using netplan::MutationSpec;
using netplan::NetAuditReport;
using netplan::NetworkPolicy;
using netplan::PlannerConfig;
using netplan::ProjectedRule;
using netplan::Round;
using netplan::Strategy;
using netplan::SwitchId;
using netplan::Topology;
using netplan::UpdatePlan;
using netplan::version_tag;
using runtime::ChurnSpec;
using runtime::CompiledWorkload;
using runtime::Controller;
using runtime::FaultSpec;
using runtime::RuntimeConfig;
using runtime::RuntimeReport;
using runtime::SessionStats;
using runtime::SwitchWorkload;

// ---- Topology -----------------------------------------------------------

TEST(Topology, ChainPortsAndPaths) {
  const Topology t = Topology::chain(3);
  ASSERT_EQ(t.switch_count(), 3u);
  EXPECT_EQ(t.port_to(0, 1), 1u);
  EXPECT_EQ(t.port_to(1, 0), 1u);
  EXPECT_EQ(t.port_to(1, 2), 2u);
  EXPECT_EQ(t.port_to(0, 2), std::nullopt);
  EXPECT_EQ(t.neighbor_via(1, 2), 2u);
  EXPECT_EQ(t.neighbor_via(1, kHostPort), std::nullopt);
  EXPECT_EQ(t.shortest_path(0, 2), (std::vector<SwitchId>{0, 1, 2}));
  EXPECT_EQ(t.shortest_path(2, 2), (std::vector<SwitchId>{2}));
}

TEST(Topology, DiamondHasTwoDisjointPaths) {
  const Topology t = Topology::diamond();
  ASSERT_EQ(t.switch_count(), 4u);
  // Tie between s1 and s2 breaks toward the lower id.
  EXPECT_EQ(t.shortest_path(0, 3), (std::vector<SwitchId>{0, 1, 3}));
  EXPECT_EQ(t.shortest_path_avoiding(0, 3, {1}),
            (std::vector<SwitchId>{0, 2, 3}));
  EXPECT_TRUE(t.shortest_path_avoiding(0, 3, {1, 2}).empty());
}

TEST(Topology, ParseSpecs) {
  EXPECT_EQ(Topology::parse("chain:5").switch_count(), 5u);
  EXPECT_EQ(Topology::parse("diamond").switch_count(), 4u);
  EXPECT_EQ(Topology::parse("random:9:4:7").switch_count(), 9u);
  EXPECT_THROW(Topology::parse("ring:4"), std::invalid_argument);
  EXPECT_THROW(Topology::parse("chain:"), std::invalid_argument);
}

TEST(Topology, RandomGraphsAreConnected) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Topology t = Topology::random_connected(10, 4, seed);
    for (SwitchId a = 0; a < t.switch_count(); ++a) {
      for (SwitchId b = 0; b < t.switch_count(); ++b) {
        EXPECT_FALSE(t.shortest_path(a, b).empty())
            << "seed " << seed << ": " << a << " -> " << b;
      }
    }
  }
}

TEST(Topology, IngressSetRestrictsPolicyEndpoints) {
  Topology t = Topology::chain(4);
  t.set_ingress({0, 3});
  EXPECT_EQ(t.ingress_switches(), (std::vector<SwitchId>{0, 3}));

  std::vector<Rule> rules;
  for (uint32_t i = 0; i < 8; ++i) {
    TernaryMatch m;
    m.set_exact(FieldId::kDstIp, 100 + i);
    rules.push_back(Rule::make(m, ActionList{Action::forward(1)}, 10));
  }
  const NetworkPolicy policy = netplan::policy_from_rules(t, rules, 3);
  for (const Flow& f : policy.flows) {
    EXPECT_TRUE(f.path.front() == 0 || f.path.front() == 3);
    EXPECT_TRUE(f.path.back() == 0 || f.path.back() == 3);
  }
}

// ---- Projection ---------------------------------------------------------

NetworkPolicy one_flow_policy(std::vector<SwitchId> path, uint32_t dst = 42) {
  Flow f;
  f.id = 0;
  f.match.set_exact(FieldId::kDstIp, dst);
  f.path = std::move(path);
  NetworkPolicy p;
  p.flows.push_back(std::move(f));
  return p;
}

TEST(Projection, PlainFlowPinsPathViaInPort) {
  const Topology topo = Topology::chain(3);
  const NetworkPolicy policy = one_flow_policy({0, 1, 2});
  const netplan::SwitchTables tables = netplan::project(topo, policy);
  ASSERT_EQ(tables.size(), 3u);
  for (const auto& t : tables) ASSERT_EQ(t.size(), 1u);

  const ProjectedRule& ingress = tables[0][0];
  EXPECT_TRUE(ingress.ingress);
  EXPECT_EQ(ingress.rule.match.field(FieldId::kInPort).value, kHostPort);
  EXPECT_EQ(ingress.rule.match.field(FieldId::kInPort).mask, 0xffu);
  ASSERT_EQ(ingress.rule.actions.actions().size(), 1u);
  EXPECT_EQ(ingress.rule.actions.actions()[0].arg, *topo.port_to(0, 1));

  const ProjectedRule& core = tables[1][0];
  EXPECT_FALSE(core.ingress);
  EXPECT_EQ(core.rule.match.field(FieldId::kInPort).value, *topo.port_to(1, 0));
  EXPECT_EQ(core.rule.actions.actions()[0].arg, *topo.port_to(1, 2));

  const ProjectedRule& egress = tables[2][0];
  EXPECT_EQ(egress.rule.actions.actions()[0].arg, kHostPort);

  const int32_t want = 2 * netplan::kFlowPriorityBase;
  for (const auto& t : tables) EXPECT_EQ(t[0].rule.priority, want);
}

TEST(Projection, TaggedFlowStampsAtIngressAndPinsCores) {
  const Topology topo = Topology::chain(3);
  NetworkPolicy policy = one_flow_policy({0, 1, 2});
  policy.version = 7;
  const uint32_t tag = version_tag(7);
  const netplan::SwitchTables tables =
      netplan::project(topo, policy, {FlowForm::kTagged});

  const ProjectedRule& ingress = tables[0][0];
  EXPECT_FALSE(ingress.tagged);  // the stamp lives in the actions
  // ActionList is canonically ordered, so find the stamp by type.
  const std::vector<Action> stamps = ingress.rule.actions.set_fields();
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0].field, FieldId::kEthType);
  EXPECT_EQ(stamps[0].arg, tag);
  EXPECT_TRUE(ingress.rule.actions.contains(ActionType::kForward));

  for (SwitchId sw : {SwitchId{1}, SwitchId{2}}) {
    const ProjectedRule& core = tables[sw][0];
    EXPECT_TRUE(core.tagged);
    EXPECT_EQ(core.rule.match.field(FieldId::kEthType).value, tag);
    EXPECT_EQ(core.rule.match.field(FieldId::kEthType).mask, 0xffffu);
  }
  // Tagged rules shadow the plain form wherever both are installed.
  EXPECT_EQ(tables[0][0].rule.priority, 2 * netplan::kFlowPriorityBase + 1);
}

TEST(Projection, PolicyMatchInsideTagRangeIsRejected) {
  const Topology topo = Topology::chain(2);
  TernaryMatch m;
  m.set_exact(FieldId::kEthType, kVersionTagBase | 0x3);
  const std::vector<Rule> rules = {
      Rule::make(m, ActionList{Action::forward(1)}, 5)};
  EXPECT_THROW(netplan::policy_from_rules(topo, rules, 1),
               std::invalid_argument);
}

// ---- Planner: hand-built round-count optimality -------------------------

std::vector<std::string> round_labels(const UpdatePlan& plan) {
  std::vector<std::string> labels;
  for (const Round& r : plan.rounds) labels.push_back(r.label);
  return labels;
}

/// The diamond reroute: one flow moves from the s1 arm to the s2 arm.
struct DiamondScenario {
  Topology topo = Topology::diamond();
  NetworkPolicy oldp = one_flow_policy({0, 1, 3});
  NetworkPolicy newp;
  DiamondScenario() {
    newp = one_flow_policy({0, 2, 3});
    newp.version = 2;
  }
};

TEST(Planner, DiamondDependencyRoundsMatchPathDepth) {
  DiamondScenario s;
  const UpdatePlan plan = netplan::plan_update(
      s.topo, s.oldp, s.newp, {Strategy::kRounds, 0});
  // Downstream-first adds (s3 then s2), one commit at s0, upstream-first
  // GC (s1 then old s3): exactly 2 + 1 + 2 rounds for a depth-3 reroute.
  EXPECT_EQ(round_labels(plan), (std::vector<std::string>{
                                    "add:0", "add:1", "commit", "gc:0", "gc:1"}));
  EXPECT_EQ(plan.flows_rounds, 1u);
  EXPECT_EQ(plan.flows_two_phase, 0u);
  EXPECT_EQ(plan.flows_forced_two_phase, 0u);
  // Only the changed hops are transiently duplicated.
  EXPECT_EQ(plan.initial_rules, 3u);
  EXPECT_EQ(plan.final_rules, 3u);
  EXPECT_LE(plan.peak_rules, 5u);
}

TEST(Planner, DiamondTwoPhaseIsThreeRoundsFlat) {
  DiamondScenario s;
  const UpdatePlan plan = netplan::plan_update(
      s.topo, s.oldp, s.newp, {Strategy::kTwoPhase, 0});
  EXPECT_EQ(round_labels(plan),
            (std::vector<std::string>{"add:0", "commit", "gc:0"}));
  EXPECT_EQ(plan.flows_two_phase, 1u);
  // The whole new path coexists with the old one between prepare and GC.
  EXPECT_GT(plan.overhead_pct(), 0.0);
}

TEST(Planner, AutoTradesRoundsForHeadroom) {
  DiamondScenario s;
  // Unbounded headroom: auto prefers the 3-round two-phase schedule.
  const UpdatePlan fast = netplan::plan_update(
      s.topo, s.oldp, s.newp, {Strategy::kAuto, 0});
  EXPECT_EQ(fast.rounds.size(), 3u);
  EXPECT_EQ(fast.flows_two_phase, 1u);
  // Capacity 1: s3 already holds a rule, no room for the tagged duplicate —
  // the flow falls back to dependency rounds (slower, but no augmentation).
  const UpdatePlan tight = netplan::plan_update(
      s.topo, s.oldp, s.newp, {Strategy::kAuto, 1});
  EXPECT_EQ(tight.rounds.size(), 5u);
  EXPECT_EQ(tight.flows_rounds, 1u);
  EXPECT_EQ(tight.flows_two_phase, 0u);
}

TEST(Planner, ChainShortenNeedsOnlyCommitPlusGc) {
  const Topology topo = Topology::chain(4);
  const NetworkPolicy oldp = one_flow_policy({0, 1, 2, 3});
  NetworkPolicy newp = one_flow_policy({0, 1, 2});
  newp.version = 2;
  const UpdatePlan plan =
      netplan::plan_update(topo, oldp, newp, {Strategy::kRounds, 0});
  // s0/s1 rules are unchanged (relinked, no delta); s2 flips its forward
  // in the commit round and the orphaned s3 rule GCs afterwards.
  EXPECT_EQ(round_labels(plan), (std::vector<std::string>{"commit", "gc:2"}));
  std::set<SwitchId> touched;
  for (const Round& r : plan.rounds) {
    for (const auto& d : r.deltas) touched.insert(d.sw);
  }
  EXPECT_EQ(touched, (std::set<SwitchId>{2, 3}));
  EXPECT_EQ(plan.peak_rules, plan.initial_rules);  // pure shrink: no overlap
}

TEST(Planner, IdenticalPoliciesPlanNoRounds) {
  const Topology topo = Topology::diamond();
  const NetworkPolicy policy = one_flow_policy({0, 1, 3});
  const UpdatePlan plan =
      netplan::plan_update(topo, policy, policy, {Strategy::kAuto, 0});
  EXPECT_TRUE(plan.rounds.empty());
  EXPECT_EQ(plan.flows_changed, 0u);
  EXPECT_EQ(plan.peak_rules, plan.initial_rules);
}

TEST(Planner, OverlappingChangedFlowsAreForcedTwoPhase) {
  const Topology topo = Topology::diamond();
  // Two overlapping flows (a /24 and a covering /16) both reroute: the
  // conflict group forces two-phase even under the rounds strategy.
  NetworkPolicy oldp, newp;
  for (uint32_t i = 0; i < 2; ++i) {
    Flow f;
    f.id = i;
    if (i == 0) {
      f.match.set_prefix(FieldId::kDstIp, 0x0a000000, 24);
    } else {
      f.match.set_prefix(FieldId::kDstIp, 0x0a000000, 16);
    }
    f.path = {0, 1, 3};
    oldp.flows.push_back(f);
    f.path = {0, 2, 3};
    newp.flows.push_back(f);
  }
  newp.version = 2;
  const UpdatePlan plan =
      netplan::plan_update(topo, oldp, newp, {Strategy::kRounds, 0});
  EXPECT_EQ(plan.flows_forced_two_phase, 2u);
  EXPECT_EQ(plan.flows_two_phase, 2u);
  EXPECT_EQ(plan.rounds.size(), 3u);  // prepare, commit, gc
}

// ---- Consistency: planner-side simulation -------------------------------

/// Synthetic policy source: a mix of disjoint /32s and covering /16s so
/// conflict groups actually form.
std::vector<Rule> synthetic_rules(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Rule> rules;
  for (size_t i = 0; i < n; ++i) {
    TernaryMatch m;
    const uint32_t base = static_cast<uint32_t>(rng.next_below(4)) << 24;
    if (i % 4 == 3) {
      m.set_prefix(FieldId::kDstIp, base | (uint32_t(i) << 16), 16);
    } else {
      m.set_exact(FieldId::kDstIp, base | static_cast<uint32_t>(i * 257 + 1));
      if (i % 3 == 0) m.set_exact(FieldId::kIpProto, 6);
    }
    rules.push_back(Rule::make(m, ActionList{Action::forward(1)},
                               static_cast<int32_t>(100 - i)));
  }
  return rules;
}

/// Replays the auditor at every round boundary of a planner-side
/// simulation. Returns the number of mixed (inconsistent) observations;
/// `final_all_new` (optional) receives whether the last boundary saw every
/// probe on the pure-new trace.
size_t mixed_across_rounds(const Topology& topo, const NetworkPolicy& oldp,
                           const NetworkPolicy& newp, const UpdatePlan& plan,
                           uint64_t audit_seed, bool* final_all_new = nullptr) {
  const std::vector<FlowTable> old_tables = netplan::tables_from(plan.initial);
  const std::vector<FlowTable> new_tables =
      netplan::tables_from(plan.final_tables);
  AuditConfig acfg;
  acfg.seed = audit_seed;
  const ConsistencyAuditor auditor(topo, oldp, newp, old_tables, new_tables,
                                   acfg);
  EXPECT_GT(auditor.probe_count(), 0u);

  std::vector<FlowTable> mid = netplan::tables_from(plan.initial);
  const LookupFn look = netplan::tables_lookup(mid);
  size_t mixed = auditor.audit(look).mixed;
  NetAuditReport last;
  for (const Round& round : plan.rounds) {
    netplan::apply_round(round, mid);
    last = auditor.audit(look);
    mixed += last.mixed;
    if (last.mixed > 0 && !last.violations.empty()) {
      ADD_FAILURE() << "round " << round.label << ": "
                    << last.violations.front();
    }
  }
  if (final_all_new != nullptr) {
    *final_all_new = plan.rounds.empty() || last.matched_old == 0;
  }
  return mixed;
}

TEST(Consistency, EveryBoundaryCleanAcrossTopologiesPoliciesSeeds) {
  const std::vector<std::string> topo_specs = {"chain:5", "diamond",
                                               "random:8:4:13"};
  const std::vector<Strategy> strategies = {Strategy::kRounds,
                                            Strategy::kTwoPhase,
                                            Strategy::kAuto};
  for (const std::string& spec : topo_specs) {
    const Topology topo = Topology::parse(spec);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const NetworkPolicy oldp =
          netplan::policy_from_rules(topo, synthetic_rules(12, seed), seed);
      MutationSpec mut;
      mut.reroute_fraction = 0.5;
      mut.drop_flows = 2;
      mut.seed = seed;
      for (uint32_t a = 0; a < 2; ++a) {
        TernaryMatch m;
        m.set_exact(FieldId::kDstIp, 0xfe000000u + a + uint32_t(seed));
        mut.add_matches.push_back(m);
      }
      const NetworkPolicy newp = netplan::mutate_policy(topo, oldp, mut);
      for (Strategy strategy : strategies) {
        const UpdatePlan plan =
            netplan::plan_update(topo, oldp, newp, {strategy, 0});
        bool final_all_new = false;
        const size_t mixed = mixed_across_rounds(topo, oldp, newp, plan,
                                                 seed * 31, &final_all_new);
        EXPECT_EQ(mixed, 0u)
            << spec << " seed " << seed << " " << netplan::strategy_name(strategy);
        EXPECT_TRUE(final_all_new)
            << spec << " seed " << seed << " " << netplan::strategy_name(strategy);
      }
    }
  }
}

TEST(Consistency, AutoUnderTightCapacityStaysClean) {
  const Topology topo = Topology::parse("random:8:4:13");
  const NetworkPolicy oldp =
      netplan::policy_from_rules(topo, synthetic_rules(12, 2), 2);
  MutationSpec mut;
  mut.reroute_fraction = 0.6;
  mut.seed = 2;
  const NetworkPolicy newp = netplan::mutate_policy(topo, oldp, mut);
  // A capacity just above the initial per-switch peak: some flows get
  // two-phase headroom, others are squeezed into dependency rounds.
  UpdatePlan probe = netplan::plan_update(topo, oldp, newp, {Strategy::kAuto, 0});
  const size_t cap = probe.peak_switch_rules > 2 ? probe.peak_switch_rules - 1 : 2;
  const UpdatePlan plan =
      netplan::plan_update(topo, oldp, newp, {Strategy::kAuto, cap});
  EXPECT_EQ(mixed_across_rounds(topo, oldp, newp, plan, 99), 0u);
  EXPECT_LE(plan.peak_switch_rules, std::max(cap, probe.peak_switch_rules));
}

TEST(Consistency, OneShotBaselineIsCaughtByTheAuditor) {
  DiamondScenario s;
  const UpdatePlan plan = netplan::plan_update(
      s.topo, s.oldp, s.newp, {Strategy::kOneShot, 0});
  ASSERT_GT(plan.rounds.size(), 1u);

  const std::vector<FlowTable> old_tables = netplan::tables_from(plan.initial);
  const std::vector<FlowTable> new_tables =
      netplan::tables_from(plan.final_tables);
  const ConsistencyAuditor auditor(s.topo, s.oldp, s.newp, old_tables,
                                   new_tables, AuditConfig{});
  std::vector<FlowTable> mid = netplan::tables_from(plan.initial);
  const LookupFn look = netplan::tables_lookup(mid);
  size_t mixed = 0;
  for (const Round& round : plan.rounds) {
    netplan::apply_round(round, mid);
    mixed += auditor.audit(look).mixed;
  }
  // Upstream-first: the ingress flips toward s2 before s2 can forward.
  EXPECT_GT(mixed, 0u);
}

// Regression: a stamped (post-commit) packet must not be captured by
// another flow's not-yet-GC'd old rule. Flow 0 (higher priority) passes
// s1->s3 in the old policy with an eth_type-wildcard rule; flow 1 reroutes
// through s3 arriving on the same port two-phase. Before tag-matched rules
// were lifted above the plain band, flow 1's stamped packet matched flow
// 0's stale rule at s3 (plain rules don't constrain eth_type) and exited
// the fabric early — a mixed trace at the commit/GC boundary.
TEST(Consistency, StampedPacketNotCapturedByOverlappingOldRule) {
  const Topology topo = Topology::diamond();

  Flow broad;  // id 0: wins every overlap in the plain band
  broad.id = 0;
  broad.match.set_prefix(FieldId::kDstIp, 0x0a010000, 16);
  Flow narrow;  // id 1: subset match, different ingress
  narrow.id = 1;
  narrow.match.set_prefix(FieldId::kDstIp, 0x0a010200, 24);

  NetworkPolicy oldp, newp;
  oldp.version = 1;
  newp.version = 2;
  broad.path = {0, 1, 3};   // egress at s3 arrives from s1
  narrow.path = {1, 0, 2};  // old path avoids s3
  oldp.flows = {broad, narrow};
  broad.path = {0, 2, 3};   // rerouted: the s3-from-s1 rule becomes stale
  narrow.path = {1, 3, 2};  // new path hits s3 from s1 — the capture site
  newp.flows = {broad, narrow};

  const UpdatePlan plan =
      netplan::plan_update(topo, oldp, newp, {Strategy::kTwoPhase, 0});
  // Overlapping changed flows form one conflict group: both two-phase.
  EXPECT_EQ(plan.flows_two_phase, 2u);
  EXPECT_EQ(mixed_across_rounds(topo, oldp, newp, plan, 71), 0u);

  // The forced path must hold under dependency rounds too.
  const UpdatePlan rplan =
      netplan::plan_update(topo, oldp, newp, {Strategy::kRounds, 0});
  EXPECT_EQ(rplan.flows_forced_two_phase, 2u);
  EXPECT_EQ(mixed_across_rounds(topo, oldp, newp, rplan, 72), 0u);
}

// ---- Materialization + fleet runtime ------------------------------------

TEST(Materialize, AllSwitchLogsShareTheRoundStructure) {
  DiamondScenario s;
  const UpdatePlan plan = netplan::plan_update(
      s.topo, s.oldp, s.newp, {Strategy::kRounds, 0});
  const std::vector<netplan::SwitchScript> scripts =
      netplan::materialize(s.topo, plan);
  ASSERT_EQ(scripts.size(), 4u);
  for (const auto& script : scripts) {
    // Epoch 1 installs, one epoch per round after that — even for switches
    // a round does not touch (their epoch is a barrier-only no-op).
    EXPECT_EQ(script.epochs.size(), 1 + plan.rounds.size());
  }
  // Expected state mirrors the planner's final tables.
  for (size_t sw = 0; sw < scripts.size(); ++sw) {
    EXPECT_EQ(scripts[sw].expected.size(), plan.final_tables[sw].size());
  }
}

TEST(Fleet, RoundsRideTheFaultyRuntimeAndStayConsistent) {
  const Topology topo = Topology::diamond();
  const NetworkPolicy oldp =
      netplan::policy_from_rules(topo, synthetic_rules(8, 4), 4);
  MutationSpec mut;
  mut.reroute_fraction = 0.5;
  mut.drop_flows = 1;
  mut.seed = 4;
  const NetworkPolicy newp = netplan::mutate_policy(topo, oldp, mut);
  const UpdatePlan plan =
      netplan::plan_update(topo, oldp, newp, {Strategy::kAuto, 0});
  ASSERT_GT(plan.rounds.size(), 0u);

  netplan::FleetConfig fc;
  fc.runtime.knobs.faults = FaultSpec::chaos();
  fc.runtime.fault_seed = 11;
  fc.runtime.n_threads = 1;
  fc.runtime.tcam_capacity = plan.peak_switch_rules + 16;
  netplan::FleetController fleet(netplan::materialize(topo, plan), fc);
  EXPECT_EQ(fleet.epochs(), 1 + plan.rounds.size());

  AuditConfig acfg;
  acfg.seed = 17;
  const ConsistencyAuditor auditor(
      topo, oldp, newp, netplan::tables_from(plan.initial),
      netplan::tables_from(plan.final_tables), acfg);
  const LookupFn live = fleet.lookup();
  size_t mixed = 0, audits = 0;
  const netplan::FleetReport report = fleet.run([&](size_t, double) {
    mixed += auditor.audit(live).mixed;
    ++audits;
  });

  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.merged.all_converged);
  EXPECT_EQ(mixed, 0u);
  EXPECT_EQ(audits, 1 + plan.rounds.size());
  EXPECT_EQ(report.rounds, plan.rounds.size());
  ASSERT_EQ(report.round_end_ms.size(), fleet.epochs());
  EXPECT_TRUE(std::is_sorted(report.round_end_ms.begin(),
                             report.round_end_ms.end()));
  EXPECT_GT(report.makespan_ms(), 0.0);
  // The chaotic wire actually fired.
  size_t dropped = 0;
  for (const SessionStats& st : report.merged.sessions) dropped += st.wire.dropped;
  EXPECT_GT(dropped, 0u);
}

TEST(Fleet, ReportIsDeterministicAcrossThreadCounts) {
  const Topology topo = Topology::chain(5);
  const NetworkPolicy oldp =
      netplan::policy_from_rules(topo, synthetic_rules(10, 6), 6);
  MutationSpec mut;
  mut.reroute_fraction = 0.5;
  mut.seed = 6;
  const NetworkPolicy newp = netplan::mutate_policy(topo, oldp, mut);
  const UpdatePlan plan =
      netplan::plan_update(topo, oldp, newp, {Strategy::kTwoPhase, 0});

  auto run_with = [&](size_t threads) {
    netplan::FleetConfig fc;
    fc.runtime.knobs.faults = FaultSpec::chaos();
    fc.runtime.fault_seed = 23;
    fc.runtime.n_threads = threads;
    fc.runtime.tcam_capacity = plan.peak_switch_rules + 16;
    netplan::FleetController fleet(netplan::materialize(topo, plan), fc);
    return fleet.run();
  };
  const netplan::FleetReport serial = run_with(1);
  const netplan::FleetReport threaded = run_with(4);
  EXPECT_TRUE(serial.merged.all_converged);
  EXPECT_EQ(serial.merged.makespan_ms, threaded.merged.makespan_ms);
  EXPECT_EQ(serial.merged.data_frames_sent, threaded.merged.data_frames_sent);
  EXPECT_EQ(serial.merged.retransmits, threaded.merged.retransmits);
  EXPECT_EQ(serial.merged.entry_writes, threaded.merged.entry_writes);
  EXPECT_EQ(serial.round_end_ms, threaded.round_end_ms);
  EXPECT_TRUE(serial.merged.ack_ms == threaded.merged.ack_ms);
}

// ---- Controller refactor regression -------------------------------------

CompiledWorkload small_workload(size_t updates, uint64_t seed) {
  util::Rng rng(seed);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{classbench::generate_monitor(25, rng)});
  tables.emplace("rtr", FlowTable{classbench::generate_router(20, rng)});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = updates;
  churn.seed = seed;
  return compile_churn_workload(spec, tables, churn);
}

/// Everything in a report that must be bit-identical between the legacy
/// shared-log path and the per-switch-log fleet path when every switch
/// replays the same log. firmware_ms is wall clock and excluded.
void expect_reports_identical(const RuntimeReport& a, const RuntimeReport& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.epochs_applied(), b.epochs_applied());
  EXPECT_EQ(a.data_frames_sent, b.data_frames_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.resync_replays, b.resync_replays);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.stale_resyncs, b.stale_resyncs);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.nacks, b.nacks);
  EXPECT_EQ(a.nack_retransmits, b.nack_retransmits);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.roll_forwards, b.roll_forwards);
  EXPECT_EQ(a.recovered_writes, b.recovered_writes);
  EXPECT_EQ(a.apply_failures, b.apply_failures);
  EXPECT_EQ(a.table_full, b.table_full);
  EXPECT_EQ(a.rolled_back, b.rolled_back);
  EXPECT_EQ(a.entry_writes, b.entry_writes);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);  // exact: virtual time
  EXPECT_EQ(a.all_converged, b.all_converged);
  EXPECT_EQ(a.updates_per_s(), b.updates_per_s());
  EXPECT_EQ(a.entry_writes_per_epoch(), b.entry_writes_per_epoch());
  EXPECT_TRUE(a.ack_ms == b.ack_ms);
  EXPECT_TRUE(a.channel_ms == b.channel_ms);
  EXPECT_TRUE(a.tcam_ms == b.tcam_ms);
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionStats& x = a.sessions[i];
    const SessionStats& y = b.sessions[i];
    EXPECT_EQ(x.epochs, y.epochs) << "session " << i;
    EXPECT_EQ(x.data_frames_sent, y.data_frames_sent) << "session " << i;
    EXPECT_EQ(x.retransmits, y.retransmits) << "session " << i;
    EXPECT_EQ(x.resyncs, y.resyncs) << "session " << i;
    EXPECT_EQ(x.restarts, y.restarts) << "session " << i;
    EXPECT_EQ(x.acks, y.acks) << "session " << i;
    EXPECT_TRUE(x.wire == y.wire) << "session " << i;
    EXPECT_EQ(x.makespan_ms, y.makespan_ms) << "session " << i;
    EXPECT_EQ(x.completed, y.completed) << "session " << i;
    EXPECT_EQ(x.converged, y.converged) << "session " << i;
    EXPECT_TRUE(x.ack_ms == y.ack_ms) << "session " << i;
    EXPECT_TRUE(x.channel_ms == y.channel_ms) << "session " << i;
    EXPECT_TRUE(x.tcam_ms == y.tcam_ms) << "session " << i;
  }
}

TEST(Controller, FleetPathIsBitIdenticalToSharedLogPath) {
  const CompiledWorkload wl = small_workload(25, 31);
  RuntimeConfig cfg;
  cfg.n_switches = 4;
  cfg.knobs.window = 4;
  cfg.n_threads = 2;
  cfg.knobs.faults = FaultSpec::chaos();
  cfg.knobs.faults.crash_p = 0.01;
  cfg.knobs.faults.corrupt_p = 0.02;
  cfg.fault_seed = 5;

  Controller shared(cfg);
  const RuntimeReport a = shared.run(wl.epochs, wl.final_rules);
  EXPECT_TRUE(a.all_converged);

  // Same workload through the per-switch-log entry point, each switch with
  // its own independently encoded (but equal) log.
  std::vector<SwitchWorkload> fleet;
  for (size_t i = 0; i < cfg.n_switches; ++i) {
    fleet.push_back({runtime::encode_log(wl.epochs), wl.final_rules});
  }
  Controller per_switch(cfg);
  const RuntimeReport b = per_switch.run_fleet(fleet);
  expect_reports_identical(a, b);
}

TEST(Controller, FleetWithHeterogeneousLogs) {
  // Different per-switch logs: each switch converges to its own table.
  const CompiledWorkload w1 = small_workload(10, 7);
  const CompiledWorkload w2 = small_workload(16, 8);
  RuntimeConfig cfg;
  cfg.knobs.faults = FaultSpec::chaos();
  cfg.fault_seed = 9;
  cfg.n_threads = 2;
  std::vector<SwitchWorkload> fleet;
  fleet.push_back({runtime::encode_log(w1.epochs), w1.final_rules});
  fleet.push_back({runtime::encode_log(w2.epochs), w2.final_rules});
  Controller controller(cfg);
  const RuntimeReport report = controller.run_fleet(fleet);
  ASSERT_EQ(report.sessions.size(), 2u);
  EXPECT_TRUE(report.all_converged);
  EXPECT_EQ(report.sessions[0].epochs, w1.epochs.size());
  EXPECT_EQ(report.sessions[1].epochs, w2.epochs.size());
  EXPECT_EQ(report.epochs_applied(), w1.epochs.size() + w2.epochs.size());
}

}  // namespace
}  // namespace ruletris
