// Shared helpers for the test suites: random flow-space objects, semantic
// equivalence checks between rule lists, and DAG-respecting linearizations.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "dag/dependency_graph.h"
#include "flowspace/action.h"
#include "flowspace/rule.h"
#include "util/rng.h"

namespace ruletris::testutil {

using dag::DependencyGraph;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using util::Rng;

/// Random ternary match over a small universe (so overlaps are frequent):
/// constrains a random subset of fields with short prefixes / tiny exact
/// domains.
inline TernaryMatch random_match(Rng& rng) {
  TernaryMatch m;
  if (rng.next_bool(0.5)) {
    m.set_prefix(FieldId::kDstIp, static_cast<uint32_t>(rng.next_below(4)) << 30,
                 static_cast<uint32_t>(rng.next_below(4)));
  }
  if (rng.next_bool(0.4)) {
    m.set_prefix(FieldId::kSrcIp, static_cast<uint32_t>(rng.next_below(4)) << 30,
                 static_cast<uint32_t>(rng.next_below(3)));
  }
  if (rng.next_bool(0.4)) {
    m.set_exact(FieldId::kIpProto, 6 + static_cast<uint32_t>(rng.next_below(2)));
  }
  if (rng.next_bool(0.3)) {
    m.set_exact(FieldId::kDstPort, 80 + static_cast<uint32_t>(rng.next_below(3)));
  }
  return m;
}

inline ActionList random_actions(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return ActionList{Action::drop()};
    case 1: return ActionList{Action::forward(1 + static_cast<uint32_t>(rng.next_below(3)))};
    case 2: return ActionList{Action::count(static_cast<uint32_t>(rng.next_below(4)))};
    default: return ActionList{Action::to_controller()};
  }
}

inline Rule random_rule(Rng& rng, int32_t priority) {
  return Rule::make(random_match(rng), random_actions(rng), priority);
}

/// Random packet drawn from the same small universe as random_match.
inline Packet random_packet(Rng& rng) {
  Packet p;
  p.set(FieldId::kDstIp, static_cast<uint32_t>(rng.next_below(4)) << 30 |
                             static_cast<uint32_t>(rng.next_u32() & 0x3fffffff));
  p.set(FieldId::kSrcIp, static_cast<uint32_t>(rng.next_below(4)) << 30 |
                             static_cast<uint32_t>(rng.next_u32() & 0x3fffffff));
  p.set(FieldId::kIpProto, 6 + static_cast<uint32_t>(rng.next_below(2)));
  p.set(FieldId::kDstPort, 80 + static_cast<uint32_t>(rng.next_below(3)));
  p.set(FieldId::kSrcPort, static_cast<uint32_t>(rng.next_below(1024)));
  p.set(FieldId::kEthType, 0x0800);
  p.set(FieldId::kInPort, static_cast<uint32_t>(rng.next_below(8)));
  return p;
}

/// First-match lookup over an ordered rule list (index 0 matched first).
inline const Rule* lookup_ordered(const std::vector<Rule>& rules, const Packet& p) {
  for (const Rule& r : rules) {
    if (r.match.matches(p)) return &r;
  }
  return nullptr;
}

/// True iff the two ordered rule lists classify `n` random packets (plus
/// every rule-corner sample packet from both lists) identically, comparing
/// the winning rule's ACTIONS (ids may differ across compilers).
inline bool semantically_equal(const std::vector<Rule>& a, const std::vector<Rule>& b,
                               Rng& rng, size_t n = 500) {
  auto check = [&](const Packet& p) {
    const Rule* ra = lookup_ordered(a, p);
    const Rule* rb = lookup_ordered(b, p);
    if ((ra == nullptr) != (rb == nullptr)) return false;
    if (ra != nullptr && !(ra->actions == rb->actions)) return false;
    return true;
  };
  for (size_t i = 0; i < n; ++i) {
    if (!check(random_packet(rng))) return false;
  }
  for (const auto* list : {&a, &b}) {
    for (const Rule& r : *list) {
      if (!check(r.match.sample_packet())) return false;
    }
  }
  return true;
}

/// A random linearization of `rules` that respects every DAG edge
/// (dependencies placed earlier). Used to check that the DAG's constraint
/// set is sufficient: ANY consistent layout must classify like the
/// canonical one.
inline std::vector<Rule> random_dag_linearization(const std::vector<Rule>& rules,
                                                  const DependencyGraph& graph,
                                                  Rng& rng) {
  std::unordered_map<RuleId, const Rule*> by_id;
  for (const Rule& r : rules) by_id[r.id] = &r;

  std::unordered_map<RuleId, size_t> remaining;  // unplaced successors
  std::vector<RuleId> ready;
  for (const Rule& r : rules) {
    size_t n = 0;
    for (RuleId succ : graph.successors(r.id)) {
      if (by_id.count(succ)) ++n;
    }
    remaining[r.id] = n;
    if (n == 0) ready.push_back(r.id);
  }
  std::vector<Rule> out;
  out.reserve(rules.size());
  while (!ready.empty()) {
    const size_t pick = rng.next_below(ready.size());
    const RuleId id = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    out.push_back(*by_id.at(id));
    for (RuleId pred : graph.predecessors(id)) {
      auto it = remaining.find(pred);
      if (it != remaining.end() && --it->second == 0) ready.push_back(pred);
    }
  }
  return out;  // size < rules.size() would indicate a cycle; callers assert
}

}  // namespace ruletris::testutil
