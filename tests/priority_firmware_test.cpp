// Priority-based firmware: sorted-layout invariant, shifting cost model,
// and semantic agreement with a reference priority table.
#include <gtest/gtest.h>

#include "tcam/priority_firmware.h"
#include "test_util.h"
#include "util/logging.h"

namespace ruletris {
namespace {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using tcam::PriorityFirmware;
using tcam::Tcam;
using util::Rng;

Rule prioritized_rule(uint32_t tag, int32_t priority) {
  TernaryMatch m;
  m.set_exact(FieldId::kDstPort, tag);
  return Rule::make(m, ActionList{Action::forward(1)}, priority);
}

TEST(PriorityFirmware, KeepsSortedLayout) {
  Tcam tcam(16);
  PriorityFirmware fw(tcam);
  Rng rng(1);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fw.insert(prioritized_rule(static_cast<uint32_t>(i),
                                           static_cast<int32_t>(rng.next_below(100)))));
    ASSERT_TRUE(fw.layout_sorted());
  }
}

TEST(PriorityFirmware, InsertReusesHoleInsideBand) {
  // A delete leaves a hole; a later insert whose priority band contains the
  // hole costs a single write.
  Tcam tcam(8);
  PriorityFirmware fw(tcam);
  ASSERT_TRUE(fw.insert(prioritized_rule(1, 10)));
  Rule middle = prioritized_rule(2, 20);
  ASSERT_TRUE(fw.insert(middle));
  ASSERT_TRUE(fw.insert(prioritized_rule(3, 30)));
  fw.remove(middle.id);
  const auto before = tcam.stats();
  ASSERT_TRUE(fw.insert(prioritized_rule(4, 15)));
  EXPECT_EQ(tcam.stats().entry_writes - before.entry_writes, 1u);
  EXPECT_EQ(tcam.stats().moves - before.moves, 0u);
  EXPECT_TRUE(fw.layout_sorted());
}

TEST(PriorityFirmware, FullBlockShiftsToReachTheFreeSlot) {
  // Naive firmware packs entries; inserting *below* the packed block must
  // shift every entry by one toward the free region — the Fig. 2(b)
  // behaviour that makes priority-based updates expensive.
  const size_t cap = 6;
  Tcam tcam(cap);
  PriorityFirmware fw(tcam);
  for (size_t i = 0; i + 1 < cap; ++i) {
    ASSERT_TRUE(fw.insert(prioritized_rule(static_cast<uint32_t>(i),
                                           static_cast<int32_t>(10 * (i + 1)))));
  }
  ASSERT_EQ(tcam.free_slots(), 1u);
  const auto before = tcam.stats();
  ASSERT_TRUE(fw.insert(prioritized_rule(99, 1)));  // below everything
  const size_t writes = tcam.stats().entry_writes - before.entry_writes;
  // All five existing entries move up one slot, plus the new write.
  EXPECT_EQ(tcam.stats().moves - before.moves, cap - 1);
  EXPECT_EQ(writes, cap);
  EXPECT_TRUE(fw.layout_sorted());
}

TEST(PriorityFirmware, FullTcamRejects) {
  Tcam tcam(2);
  PriorityFirmware fw(tcam);
  ASSERT_TRUE(fw.insert(prioritized_rule(1, 1)));
  ASSERT_TRUE(fw.insert(prioritized_rule(2, 2)));
  util::set_log_level(util::LogLevel::kOff);
  EXPECT_FALSE(fw.insert(prioritized_rule(3, 3)));
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(PriorityFirmware, ModifySamePriorityInPlace) {
  Tcam tcam(4);
  PriorityFirmware fw(tcam);
  Rule r = prioritized_rule(1, 10);
  ASSERT_TRUE(fw.insert(r));
  Rule changed = r;
  changed.actions = ActionList{Action::drop()};
  const auto before = tcam.stats();
  ASSERT_TRUE(fw.modify(changed));
  EXPECT_EQ(tcam.stats().entry_writes - before.entry_writes, 1u);
  EXPECT_EQ(tcam.stats().moves - before.moves, 0u);
  EXPECT_TRUE(tcam.rule(r.id).actions.contains(flowspace::ActionType::kDrop));
}

TEST(PriorityFirmware, ModifyPriorityReinserts) {
  Tcam tcam(8);
  PriorityFirmware fw(tcam);
  Rule a = prioritized_rule(1, 10);
  Rule b = prioritized_rule(2, 20);
  ASSERT_TRUE(fw.insert(a));
  ASSERT_TRUE(fw.insert(b));
  Rule moved = a;
  moved.priority = 30;  // now above b
  ASSERT_TRUE(fw.modify(moved));
  EXPECT_TRUE(fw.layout_sorted());
  EXPECT_GT(tcam.address_of(a.id), tcam.address_of(b.id));
}

/// Semantic property: after a random prioritized update stream the TCAM
/// classifies exactly like the shadow priority table.
TEST(PriorityFirmware, RandomStreamMatchesPriorityTable) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    Tcam tcam(48);
    PriorityFirmware fw(tcam);
    FlowTable shadow;
    std::vector<RuleId> live;
    for (int step = 0; step < 80; ++step) {
      if (!live.empty() && rng.next_bool(0.4)) {
        const size_t pick = rng.next_below(live.size());
        fw.remove(live[pick]);
        shadow.erase(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        // Distinct priorities keep the shadow's tie behaviour irrelevant.
        Rule r = testutil::random_rule(rng, step + 1);
        live.push_back(r.id);
        shadow.insert(r);
        ASSERT_TRUE(fw.insert(r));
      }
      ASSERT_TRUE(fw.layout_sorted());
    }
    for (int k = 0; k < 300; ++k) {
      const auto p = testutil::random_packet(rng);
      const Rule* expect = shadow.lookup(p);
      const Rule* got = tcam.lookup(p);
      ASSERT_EQ(expect == nullptr, got == nullptr);
      if (expect != nullptr) {
        EXPECT_EQ(expect->id, got->id);
      }
    }
  }
}

}  // namespace
}  // namespace ruletris
