// ClassBench file format: range-to-prefix expansion, parsing, round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "classbench/format.h"
#include "test_util.h"

namespace ruletris {
namespace {

using classbench::parse_classbench;
using classbench::range_to_prefixes;
using classbench::write_classbench;
using flowspace::FieldId;
using flowspace::Packet;
using flowspace::Rule;
using util::Rng;

TEST(RangeToPrefixes, FullRangeIsWildcard) {
  const auto prefixes = range_to_prefixes(0, 65535, 16);
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].second, 0u);
}

TEST(RangeToPrefixes, ExactValue) {
  const auto prefixes = range_to_prefixes(80, 80, 16);
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].first, 80u);
  EXPECT_EQ(prefixes[0].second, 0xffffu);
}

TEST(RangeToPrefixes, ClassicWorstCase) {
  // [1, 2^16 - 2] needs 2*(16-1) = 30 prefixes — the textbook worst case.
  const auto prefixes = range_to_prefixes(1, 65534, 16);
  EXPECT_EQ(prefixes.size(), 30u);
}

TEST(RangeToPrefixes, CoversExactlyTheRange) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t a = static_cast<uint32_t>(rng.next_below(65536));
    const uint32_t b = static_cast<uint32_t>(rng.next_below(65536));
    const uint32_t lo = std::min(a, b), hi = std::max(a, b);
    const auto prefixes = range_to_prefixes(lo, hi, 16);
    for (int k = 0; k < 50; ++k) {
      const uint32_t v = static_cast<uint32_t>(rng.next_below(65536));
      size_t matching = 0;
      for (const auto& [value, mask] : prefixes) {
        if ((v & mask) == value) ++matching;
      }
      const bool inside = v >= lo && v <= hi;
      EXPECT_EQ(matching, inside ? 1u : 0u)
          << "value " << v << " range [" << lo << "," << hi << "]";
    }
  }
}

TEST(RangeToPrefixes, BadInputsThrow) {
  EXPECT_THROW(range_to_prefixes(5, 4, 16), std::invalid_argument);
  EXPECT_THROW(range_to_prefixes(0, 65536, 16), std::invalid_argument);
  EXPECT_THROW(range_to_prefixes(0, 0, 0), std::invalid_argument);
}

TEST(ClassbenchParse, CanonicalFilter) {
  std::istringstream in(
      "@210.45.0.0/16\t10.2.3.0/24\t0 : 65535\t80 : 80\t0x06/0xFF\t0x0/0x0\n");
  const auto parsed = parse_classbench(in);
  ASSERT_EQ(parsed.filters, 1u);
  ASSERT_EQ(parsed.rules.size(), 1u);
  const Rule& r = parsed.rules[0];
  EXPECT_EQ(r.match.field(FieldId::kSrcIp).value, 0xd22d0000u);
  EXPECT_EQ(r.match.field(FieldId::kDstIp).mask, 0xffffff00u);
  EXPECT_EQ(r.match.field(FieldId::kDstPort).value, 80u);
  EXPECT_EQ(r.match.field(FieldId::kSrcPort).mask, 0u);
  EXPECT_EQ(r.match.field(FieldId::kIpProto).value, 6u);
}

TEST(ClassbenchParse, RangeExpansion) {
  // dst ports [1024, 65535] expand into 6 prefixes.
  std::istringstream in("@0.0.0.0/0 0.0.0.0/0 0 : 65535 1024 : 65535 0x00/0x00\n");
  const auto parsed = parse_classbench(in);
  EXPECT_EQ(parsed.filters, 1u);
  EXPECT_EQ(parsed.rules.size(), 6u);
  EXPECT_EQ(parsed.expansion_overhead, 5u);
  // Together the expanded rules match exactly the range.
  for (uint32_t port : {1023u, 1024u, 40000u, 65535u}) {
    Packet p;
    p.set(FieldId::kDstPort, port);
    size_t hits = 0;
    for (const Rule& r : parsed.rules) {
      if (r.match.matches(p)) ++hits;
    }
    EXPECT_EQ(hits, port >= 1024 ? 1u : 0u) << "port " << port;
  }
}

TEST(ClassbenchParse, CommentsAndBlanksSkipped) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "@1.2.3.4/32 5.6.7.8/32 80 : 80 443 : 443 0x06/0xFF\n");
  const auto parsed = parse_classbench(in);
  EXPECT_EQ(parsed.rules.size(), 1u);
}

TEST(ClassbenchParse, LineOrderIsPriorityOrder) {
  std::istringstream in(
      "@1.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n"
      "@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n");
  const auto parsed = parse_classbench(in);
  ASSERT_EQ(parsed.rules.size(), 2u);
  EXPECT_GT(parsed.rules[0].priority, parsed.rules[1].priority);
}

TEST(ClassbenchParse, MalformedInputsThrow) {
  for (const char* bad : {
           "1.2.3.4/32 5.6.7.8/32 0 : 65535 0 : 65535 0x06/0xFF\n",  // no '@'
           "@1.2.3.4/33 5.6.7.8/32 0 : 65535 0 : 65535 0x06/0xFF\n",  // bad len
           "@1.2.3.4/32 5.6.7.8/32 90 : 80 0 : 65535 0x06/0xFF\n",    // inverted
           "@1.2.3.4/32 5.6.7.8/32 0 : 65535 0 : 65535\n",            // missing proto
           "@1.2.3.400/32 5.6.7.8/32 0 : 65535 0 : 65535 0x06/0xFF\n",  // octet
       }) {
    std::istringstream in(bad);
    EXPECT_THROW(parse_classbench(in), std::runtime_error) << bad;
  }
}

TEST(ClassbenchRoundTrip, WriteThenParsePreservesSemantics) {
  std::istringstream in(
      "@210.45.0.0/16 10.2.3.0/24 0 : 65535 80 : 80 0x06/0xFF\n"
      "@0.0.0.0/0 10.0.0.0/8 1024 : 65535 53 : 53 0x11/0xFF\n"
      "@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n");
  const auto first = parse_classbench(in);

  std::ostringstream out;
  write_classbench(out, first.rules);
  std::istringstream again(out.str());
  const auto second = parse_classbench(again);
  ASSERT_EQ(second.rules.size(), first.rules.size());

  Rng rng(9);
  for (int k = 0; k < 500; ++k) {
    const Packet p = testutil::random_packet(rng);
    const Rule* a = testutil::lookup_ordered(first.rules, p);
    const Rule* b = testutil::lookup_ordered(second.rules, p);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(a->match, b->match);
    }
  }
}

}  // namespace
}  // namespace ruletris
