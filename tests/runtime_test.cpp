// Unit tests for the asynchronous control-plane runtime: event queue
// ordering, fault-wire determinism, agent reorder/duplicate/restart
// semantics, session windowing, and controller fan-out.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classbench/generator.h"
#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "proto/codec.h"
#include "runtime/agent.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/event_queue.h"
#include "runtime/session.h"
#include "runtime/wire.h"
#include "runtime/workload.h"
#include "switchsim/adapters.h"
#include "tcam/auditor.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using compiler::PolicySpec;
using compiler::TableUpdate;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;
using runtime::ChurnSpec;
using runtime::CompiledWorkload;
using runtime::compile_churn_workload;
using runtime::Controller;
using runtime::EncodedEpoch;
using runtime::EventQueue;
using runtime::FaultSpec;
using runtime::FaultyWire;
using runtime::RuntimeConfig;
using runtime::RuntimeReport;
using runtime::SessionConfig;
using runtime::SessionStats;
using runtime::SwitchAgent;
using runtime::SwitchSession;

TEST(EventQueue, RunsEventsInDueThenFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  q.post(5.0, [&] { order.push_back(3); });
  q.post(1.0, [&] { order.push_back(1); });
  q.post(5.0, [&] { order.push_back(4); });  // same due as first: FIFO
  q.post(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, PastDuePostsFireAtNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.post(10.0, [&] { q.post(3.0, [&] { fired_at = q.now(); }); });
  while (q.run_next()) {
  }
  EXPECT_DOUBLE_EQ(fired_at, 10.0);  // clamped, no time travel
}

TEST(FaultyWire, FaultFreeDeliversExactlyOnceAtOneWayLatency) {
  proto::ChannelModel channel;
  FaultyWire wire(channel, FaultSpec{}, 42);
  const auto arrivals = wire.arrivals(100.0, 1000);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(arrivals[0].at_ms, 100.0 + channel.one_way_ms(1000));
  EXPECT_FALSE(arrivals[0].corrupted);
  EXPECT_EQ(wire.counters().sent, 1u);
  EXPECT_EQ(wire.counters().dropped, 0u);
}

TEST(FaultyWire, SameSeedSameFaultStream) {
  proto::ChannelModel channel;
  FaultSpec faults = FaultSpec::chaos();
  FaultyWire a(channel, faults, 7);
  FaultyWire b(channel, faults, 7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.arrivals(i * 1.5, 200 + i), b.arrivals(i * 1.5, 200 + i));
  }
  EXPECT_TRUE(a.counters() == b.counters());
  // A chaotic mix actually exercises every fault class over 500 sends.
  EXPECT_GT(a.counters().dropped, 0u);
  EXPECT_GT(a.counters().duplicated, 0u);
  EXPECT_GT(a.counters().delayed, 0u);
}

/// One barrier-fenced epoch batch installing a single fresh rule.
EncodedEpoch make_single_rule_epoch(int32_t priority, Rule* out_rule = nullptr) {
  TernaryMatch m;
  m.set_exact(FieldId::kDstIp, static_cast<uint32_t>(1000 + priority));
  Rule r = Rule::make(m, ActionList{Action::forward(1)}, priority);
  if (out_rule != nullptr) *out_rule = r;
  TableUpdate upd;
  upd.added.push_back(r);
  upd.dag.added_vertices.push_back(r.id);
  EncodedEpoch epoch;
  const proto::MessageBatch batch = switchsim::to_messages(upd);
  epoch.wire = std::make_shared<const proto::Bytes>(proto::encode_batch(batch));
  epoch.messages = batch.size();
  return epoch;
}

TEST(SwitchAgent, BuffersOutOfOrderAndAppliesInEpochOrder) {
  SwitchAgent agent(64, proto::ChannelModel{});
  const EncodedEpoch e1 = make_single_rule_epoch(1);
  const EncodedEpoch e2 = make_single_rule_epoch(2);
  const EncodedEpoch e3 = make_single_rule_epoch(3);

  // Epoch 2 arrives first: nothing can apply yet.
  const auto in2 = agent.on_data(2, e2.wire, 1.0);
  EXPECT_TRUE(in2.applied.empty());
  EXPECT_FALSE(in2.duplicate);
  EXPECT_EQ(agent.buffered(), 1u);
  EXPECT_EQ(agent.last_applied(), 0u);

  // Epoch 1 arrives: 1 then the buffered 2 apply, strictly in order.
  const auto in1 = agent.on_data(1, e1.wire, 2.0);
  ASSERT_EQ(in1.applied.size(), 2u);
  EXPECT_EQ(in1.applied[0].epoch, 1u);
  EXPECT_EQ(in1.applied[1].epoch, 2u);
  EXPECT_TRUE(in1.applied[0].ok);
  EXPECT_EQ(agent.last_applied(), 2u);
  EXPECT_EQ(agent.buffered(), 0u);
  EXPECT_EQ(agent.device().tcam().occupied(), 2u);
  EXPECT_GE(in1.done_ms, 2.0);

  // A late duplicate of epoch 1 is discarded but still answered.
  const auto dup = agent.on_data(1, e1.wire, 3.0);
  EXPECT_TRUE(dup.duplicate);
  EXPECT_TRUE(dup.applied.empty());
  EXPECT_EQ(agent.duplicates(), 1u);
  EXPECT_EQ(agent.last_applied(), 2u);

  // Epoch 3 then completes normally.
  const auto in3 = agent.on_data(3, e3.wire, 4.0);
  ASSERT_EQ(in3.applied.size(), 1u);
  EXPECT_EQ(agent.last_applied(), 3u);
  EXPECT_EQ(agent.device().tcam().occupied(), 3u);
}

TEST(SwitchAgent, RestartDropsReorderBufferButKeepsAppliedState) {
  SwitchAgent agent(64, proto::ChannelModel{});
  const EncodedEpoch e1 = make_single_rule_epoch(1);
  const EncodedEpoch e3 = make_single_rule_epoch(3);

  agent.on_data(1, e1.wire, 1.0);
  agent.on_data(3, e3.wire, 2.0);  // waits for epoch 2
  EXPECT_EQ(agent.buffered(), 1u);
  EXPECT_EQ(agent.last_applied(), 1u);

  agent.restart();
  EXPECT_EQ(agent.buffered(), 0u);        // volatile state lost
  EXPECT_EQ(agent.last_applied(), 1u);    // applied epochs survive
  EXPECT_EQ(agent.device().tcam().occupied(), 1u);  // TCAM is hardware
  EXPECT_EQ(agent.restarts(), 1u);
}

/// Small monitor+router composition with churn on the monitor leaf.
CompiledWorkload small_workload(size_t updates, uint64_t seed) {
  util::Rng rng(seed);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{classbench::generate_monitor(25, rng)});
  tables.emplace("rtr", FlowTable{classbench::generate_router(20, rng)});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = updates;
  churn.seed = seed;
  return compile_churn_workload(spec, tables, churn);
}

std::vector<EncodedEpoch> encode_log(const CompiledWorkload& wl) {
  std::vector<EncodedEpoch> log;
  for (const proto::MessageBatch& batch : wl.epochs) {
    EncodedEpoch e;
    e.wire = std::make_shared<const proto::Bytes>(proto::encode_batch(batch));
    e.messages = batch.size();
    log.push_back(std::move(e));
  }
  return log;
}

TEST(SwitchSession, FaultFreeSessionConvergesWithoutRetries) {
  const CompiledWorkload wl = small_workload(40, 11);
  const std::vector<EncodedEpoch> log = encode_log(wl);

  SessionConfig cfg;
  cfg.knobs.window = 4;
  // Above the modeled apply time of the big initial-install epoch, so the
  // retry timer never fires spuriously and the counters stay exact.
  cfg.knobs.retry.timeout_ms = 500.0;
  cfg.tcam_capacity = wl.suggested_capacity();
  SwitchSession session(cfg, log);
  const SessionStats stats = session.run(wl.final_rules);

  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.epochs, wl.epochs.size());
  EXPECT_EQ(stats.data_frames_sent, wl.epochs.size());  // no re-sends
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.acks, wl.epochs.size());
  EXPECT_EQ(stats.apply_failures, 0u);
  EXPECT_EQ(stats.ack_ms.count(), wl.epochs.size());
  EXPECT_EQ(stats.channel_ms.count(), wl.epochs.size());
  EXPECT_GT(stats.makespan_ms, 0.0);
}

TEST(SwitchSession, WiderWindowPipelinesAndShrinksMakespan) {
  const CompiledWorkload wl = small_workload(40, 12);
  const std::vector<EncodedEpoch> log = encode_log(wl);

  auto run_with_window = [&](size_t window) {
    SessionConfig cfg;
    cfg.knobs.window = window;
    cfg.tcam_capacity = wl.suggested_capacity();
    SwitchSession session(cfg, log);
    return session.run(wl.final_rules);
  };

  const SessionStats w1 = run_with_window(1);
  const SessionStats w8 = run_with_window(8);
  EXPECT_TRUE(w1.converged);
  EXPECT_TRUE(w8.converged);
  // window=1 pays a full round trip per epoch; window=8 overlaps them.
  EXPECT_LT(w8.makespan_ms, w1.makespan_ms);
}

TEST(SwitchSession, ChaoticWireStillConverges) {
  const CompiledWorkload wl = small_workload(40, 13);
  const std::vector<EncodedEpoch> log = encode_log(wl);

  SessionConfig cfg;
  cfg.knobs.window = 4;
  cfg.knobs.faults = FaultSpec::chaos();
  cfg.seed = 99;
  cfg.tcam_capacity = wl.suggested_capacity();
  SwitchSession session(cfg, log);
  const SessionStats stats = session.run(wl.final_rules);

  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.apply_failures, 0u);
  // The fault machinery was actually exercised.
  EXPECT_GT(stats.wire.dropped, 0u);
  EXPECT_GT(stats.retransmits + stats.resync_replays, 0u);
  EXPECT_GT(stats.data_frames_sent, wl.epochs.size());
}

TEST(SwitchSession, EmptyEpochLogFinishesImmediately) {
  const std::vector<EncodedEpoch> log;
  SessionConfig cfg;
  SwitchSession session(cfg, log);
  const SessionStats stats = session.run({});
  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(stats.converged);
  EXPECT_DOUBLE_EQ(stats.makespan_ms, 0.0);
  EXPECT_EQ(stats.data_frames_sent, 0u);
}

/// Everything in a report that must be bit-identical across thread counts.
/// firmware_ms is wall clock and explicitly excluded.
void expect_reports_identical(const RuntimeReport& a, const RuntimeReport& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.data_frames_sent, b.data_frames_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.resync_replays, b.resync_replays);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.stale_resyncs, b.stale_resyncs);
  EXPECT_EQ(a.nacks, b.nacks);
  EXPECT_EQ(a.nack_retransmits, b.nack_retransmits);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.roll_forwards, b.roll_forwards);
  EXPECT_EQ(a.recovered_writes, b.recovered_writes);
  EXPECT_EQ(a.apply_failures, b.apply_failures);
  EXPECT_EQ(a.table_full, b.table_full);
  EXPECT_EQ(a.rolled_back, b.rolled_back);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);  // exact: virtual time
  EXPECT_EQ(a.all_converged, b.all_converged);
  EXPECT_TRUE(a.ack_ms == b.ack_ms);
  EXPECT_TRUE(a.channel_ms == b.channel_ms);
  EXPECT_TRUE(a.tcam_ms == b.tcam_ms);
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionStats& x = a.sessions[i];
    const SessionStats& y = b.sessions[i];
    EXPECT_EQ(x.data_frames_sent, y.data_frames_sent) << "session " << i;
    EXPECT_EQ(x.retransmits, y.retransmits) << "session " << i;
    EXPECT_EQ(x.resyncs, y.resyncs) << "session " << i;
    EXPECT_EQ(x.restarts, y.restarts) << "session " << i;
    EXPECT_EQ(x.acks, y.acks) << "session " << i;
    EXPECT_TRUE(x.wire == y.wire) << "session " << i;
    EXPECT_EQ(x.makespan_ms, y.makespan_ms) << "session " << i;
    EXPECT_TRUE(x.ack_ms == y.ack_ms) << "session " << i;
    EXPECT_TRUE(x.channel_ms == y.channel_ms) << "session " << i;
    EXPECT_TRUE(x.tcam_ms == y.tcam_ms) << "session " << i;
  }
}

TEST(Controller, FanOutConvergesAndIsDeterministicAcrossThreadCounts) {
  const CompiledWorkload wl = small_workload(30, 21);

  auto run_with_threads = [&](size_t threads) {
    RuntimeConfig cfg;
    cfg.n_switches = 4;
    cfg.knobs.window = 4;
    cfg.n_threads = threads;
    cfg.knobs.faults = FaultSpec::chaos();
    cfg.fault_seed = 5;
    Controller controller(cfg);
    return controller.run(wl.epochs, wl.final_rules);
  };

  const RuntimeReport serial = run_with_threads(1);
  EXPECT_TRUE(serial.all_converged);
  EXPECT_EQ(serial.apply_failures, 0u);
  EXPECT_EQ(serial.sessions.size(), 4u);
  EXPECT_GT(serial.updates_per_s(), 0.0);

  const RuntimeReport threaded = run_with_threads(4);
  expect_reports_identical(serial, threaded);

  const RuntimeReport again = run_with_threads(4);
  expect_reports_identical(serial, again);
}

TEST(SwitchAgent, CorruptFrameIsNackedNeverParsed) {
  SwitchAgent agent(64, proto::ChannelModel{});
  const EncodedEpoch e1 = make_single_rule_epoch(1);
  proto::Bytes damaged = *e1.wire;
  damaged[damaged.size() / 2] ^= 0x40;  // one flipped bit in transit

  const auto in = agent.on_data(
      1, std::make_shared<const proto::Bytes>(damaged), 1.0);
  EXPECT_TRUE(in.corrupt);
  EXPECT_TRUE(in.applied.empty());
  EXPECT_EQ(agent.buffered(), 0u);  // never parsed, never buffered
  EXPECT_EQ(agent.last_applied(), 0u);
  EXPECT_EQ(agent.corrupt_frames(), 1u);

  // The pristine retransmit then applies normally.
  const auto retry = agent.on_data(1, e1.wire, 2.0);
  ASSERT_EQ(retry.applied.size(), 1u);
  EXPECT_EQ(agent.last_applied(), 1u);
}

TEST(SwitchAgent, CrashTearsApplyAndRecoveryRestoresService) {
  SwitchAgent agent(64, proto::ChannelModel{});
  // Arm a one-shot crash on the first journaled op of the next apply.
  bool armed = true;
  agent.device().dag_firmware().set_crash_hook([&armed] {
    if (!armed) return false;
    armed = false;
    return true;
  });

  const EncodedEpoch e1 = make_single_rule_epoch(1);
  const auto in = agent.on_data(1, e1.wire, 1.0);
  EXPECT_TRUE(in.crashed);
  EXPECT_TRUE(in.applied.empty());
  EXPECT_TRUE(agent.down());
  EXPECT_EQ(agent.crashes(), 1u);
  EXPECT_EQ(agent.device().tcam().occupied(), 0u);  // nothing half-written

  // Down agents drop frames on the floor.
  const auto while_down = agent.on_data(1, e1.wire, 2.0);
  EXPECT_TRUE(while_down.dropped);

  const auto recovery = agent.recover_and_restart();
  EXPECT_FALSE(recovery.rolled_forward);  // intent logged, op never executed
  EXPECT_TRUE(agent.down());              // still down until power_on
  agent.power_on(5.0);
  EXPECT_FALSE(agent.down());

  const auto retry = agent.on_data(1, e1.wire, 6.0);
  ASSERT_EQ(retry.applied.size(), 1u);
  EXPECT_EQ(agent.last_applied(), 1u);
  EXPECT_EQ(agent.device().tcam().occupied(), 1u);
  EXPECT_EQ(agent.restarts(), 1u);
}

TEST(SwitchSession, CorruptedFramesAreNackedAndRetransmitted) {
  const CompiledWorkload wl = small_workload(40, 17);
  const std::vector<EncodedEpoch> log = encode_log(wl);

  SessionConfig cfg;
  cfg.knobs.window = 4;
  cfg.knobs.retry.timeout_ms = 500.0;  // NACKs, not timeouts, must drive recovery
  cfg.knobs.faults.corrupt_p = 0.2;
  cfg.seed = 3;
  cfg.tcam_capacity = wl.suggested_capacity();
  SwitchSession session(cfg, log);
  const SessionStats stats = session.run(wl.final_rules);

  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.wire.corrupted, 0u);
  EXPECT_GT(stats.nacks, 0u);
  EXPECT_GT(stats.nack_retransmits, 0u);
  EXPECT_EQ(stats.apply_failures, 0u);
  EXPECT_EQ(stats.crashes, 0u);
}

/// Regression for the double-restart window: the agent restarts again while
/// the resync replay for its first restart is still in flight, so a resync
/// anchored below the committed frontier arrives late. The controller must
/// take the min anchor and replay, never strand the tail of the log.
TEST(SwitchSession, DoubleRestartDuringResyncReplayStillConverges) {
  const CompiledWorkload wl = small_workload(40, 18);
  const std::vector<EncodedEpoch> log = encode_log(wl);

  size_t stale_total = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SessionConfig cfg;
    cfg.knobs.window = 6;
    cfg.knobs.faults.restart_every_ms = 15.0;  // restarts race the replays
    cfg.knobs.faults.delay_p = 0.4;            // delayed frames invert orderings
    cfg.knobs.faults.delay_ms = 12.0;
    cfg.seed = seed;
    cfg.tcam_capacity = wl.suggested_capacity();
    SwitchSession session(cfg, log);
    const SessionStats stats = session.run(wl.final_rules);
    EXPECT_TRUE(stats.completed) << "seed " << seed;
    EXPECT_TRUE(stats.converged) << "seed " << seed;
    EXPECT_GT(stats.restarts, 1u) << "seed " << seed;
    stale_total += stats.stale_resyncs;
  }
  // The race actually occurred somewhere in the sweep — the min-anchor
  // handling was exercised, not just reachable.
  EXPECT_GT(stale_total, 0u);
}

/// Satellite: table-full is a structured outcome, not a crash. A session
/// whose TCAM cannot hold the workload completes (rejections are acked),
/// reports the rejections as kTableFull/kRolledBack, and leaves the device
/// auditor-clean — rejected updates never tear the TCAM.
TEST(SwitchSession, CapacityExhaustionRejectsCleanlyAndAuditsClean) {
  const CompiledWorkload wl = small_workload(40, 19);
  const std::vector<EncodedEpoch> log = encode_log(wl);

  SessionConfig cfg;
  cfg.knobs.window = 4;
  // Deliberately below the table's high-water mark, so some update in the
  // stream must be rejected for capacity.
  cfg.tcam_capacity = wl.peak_visible - wl.peak_visible / 4;
  SwitchSession session(cfg, log);
  util::set_log_level(util::LogLevel::kOff);  // rejections are the point
  const SessionStats stats = session.run(wl.final_rules);
  util::set_log_level(util::LogLevel::kWarn);

  EXPECT_TRUE(stats.completed);   // rejected epochs still ack and advance
  EXPECT_FALSE(stats.converged);  // but the expected table cannot fit
  EXPECT_GT(stats.apply_failures, 0u);
  EXPECT_GT(stats.table_full + stats.rolled_back, 0u);
  EXPECT_EQ(stats.apply_failures, stats.table_full + stats.rolled_back);

  // Structural invariants survive every rejection.
  const auto& device = session.agent().device();
  const auto audit =
      tcam::audit_state(device.tcam(), device.dag_firmware().graph());
  EXPECT_TRUE(audit.clean()) << audit.to_string();
  EXPECT_TRUE(device.dag_firmware().layout_valid());
}

TEST(Controller, SessionsDrawIndependentFaultStreams) {
  const CompiledWorkload wl = small_workload(30, 22);
  RuntimeConfig cfg;
  cfg.n_switches = 4;
  cfg.knobs.faults = FaultSpec::chaos();
  cfg.fault_seed = 6;
  cfg.n_threads = 1;
  Controller controller(cfg);
  const RuntimeReport report = controller.run(wl.epochs, wl.final_rules);
  EXPECT_TRUE(report.all_converged);

  // With independent per-session streams it is (astronomically) unlikely
  // that every session saw the identical fault pattern.
  bool any_difference = false;
  for (size_t i = 1; i < report.sessions.size(); ++i) {
    if (!(report.sessions[i].wire == report.sessions[0].wire) ||
        report.sessions[i].makespan_ms != report.sessions[0].makespan_ms) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ruletris
