// Unit and property tests for the flow-space algebra.
#include <gtest/gtest.h>
#include <unordered_set>

#include "flowspace/action.h"
#include "flowspace/rule.h"
#include "flowspace/rule_index.h"
#include "flowspace/ternary.h"
#include "test_util.h"

namespace ruletris {
namespace {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::ActionType;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleIndex;
using flowspace::TernaryMatch;
using testutil::random_match;
using testutil::random_packet;
using util::Rng;

TEST(TernaryMatch, WildcardMatchesEverything) {
  const TernaryMatch m = TernaryMatch::wildcard();
  EXPECT_TRUE(m.is_wildcard());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(m.matches(random_packet(rng)));
}

TEST(TernaryMatch, ExactMatch) {
  TernaryMatch m;
  m.set_exact(FieldId::kDstPort, 80);
  Packet p;
  p.set(FieldId::kDstPort, 80);
  EXPECT_TRUE(m.matches(p));
  p.set(FieldId::kDstPort, 81);
  EXPECT_FALSE(m.matches(p));
}

TEST(TernaryMatch, PrefixSemantics) {
  TernaryMatch m;
  m.set_prefix(FieldId::kDstIp, 0x0a000000, 8);  // 10.0.0.0/8
  Packet p;
  p.set(FieldId::kDstIp, 0x0a123456);
  EXPECT_TRUE(m.matches(p));
  p.set(FieldId::kDstIp, 0x0b000000);
  EXPECT_FALSE(m.matches(p));
}

TEST(TernaryMatch, PrefixZeroIsWildcard) {
  TernaryMatch m;
  m.set_prefix(FieldId::kSrcIp, 0xdeadbeef, 0);
  EXPECT_TRUE(m.is_wildcard());
}

TEST(TernaryMatch, PrefixTooLongThrows) {
  TernaryMatch m;
  EXPECT_THROW(m.set_prefix(FieldId::kDstPort, 0, 17), std::invalid_argument);
}

TEST(TernaryMatch, MaskOutsideWidthThrows) {
  TernaryMatch m;
  EXPECT_THROW(m.set_ternary(FieldId::kIpProto, 0, 0x100), std::invalid_argument);
}

TEST(TernaryMatch, ValueCanonicalizedUnderMask) {
  TernaryMatch a, b;
  a.set_ternary(FieldId::kDstPort, 0x00ff, 0xff00);
  b.set_ternary(FieldId::kDstPort, 0x0000, 0xff00);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(TernaryMatch, OverlapSymmetricAndIntersect) {
  TernaryMatch a, b;
  a.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  b.set_prefix(FieldId::kDstIp, 0x0a0a0000, 16);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  auto inter = a.intersect(b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(*inter, b);  // nested prefixes: intersection is the narrower one
}

TEST(TernaryMatch, DisjointPrefixes) {
  TernaryMatch a, b;
  a.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  b.set_prefix(FieldId::kDstIp, 0x0b000000, 8);
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(TernaryMatch, SubsumesBasics) {
  TernaryMatch wide, narrow;
  wide.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  narrow.set_prefix(FieldId::kDstIp, 0x0a0a0000, 16);
  EXPECT_TRUE(wide.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(wide));
  EXPECT_TRUE(TernaryMatch::wildcard().subsumes(wide));
  EXPECT_TRUE(wide.subsumes(wide));
}

TEST(TernaryMatch, SubtractDisjointReturnsSelf) {
  TernaryMatch a, b;
  a.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  b.set_prefix(FieldId::kDstIp, 0x0b000000, 8);
  auto pieces = a.subtract(b);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], a);
}

TEST(TernaryMatch, SubtractSubsumedIsEmpty) {
  TernaryMatch a, b;
  a.set_prefix(FieldId::kDstIp, 0x0a0a0000, 16);
  b.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  EXPECT_TRUE(a.subtract(b).empty());  // a ⊆ b
}

TEST(TernaryMatch, SubtractPiecesDisjointAndExact) {
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    const TernaryMatch a = random_match(rng);
    const TernaryMatch b = random_match(rng);
    const auto pieces = a.subtract(b);
    // Each piece is inside a and outside b.
    for (const auto& piece : pieces) {
      EXPECT_TRUE(a.subsumes(piece));
      EXPECT_FALSE(piece.overlaps(b));
    }
    // Pieces are pairwise disjoint.
    for (size_t i = 0; i < pieces.size(); ++i) {
      for (size_t j = i + 1; j < pieces.size(); ++j) {
        EXPECT_FALSE(pieces[i].overlaps(pieces[j]));
      }
    }
    // Point check: random packets in a land in exactly one of
    // (pieces ∪ a∩b).
    for (int k = 0; k < 20; ++k) {
      Packet p = random_packet(rng);
      if (!a.matches(p)) continue;
      size_t hits = b.matches(p) ? 1 : 0;
      for (const auto& piece : pieces) {
        if (piece.matches(p)) ++hits;
      }
      EXPECT_EQ(hits, 1u) << "packet in a must be in b xor exactly one piece";
    }
  }
}

TEST(TernaryMatch, CoverByParts) {
  TernaryMatch whole, left, right;
  whole.set_prefix(FieldId::kDstIp, 0x80000000, 1);
  left.set_prefix(FieldId::kDstIp, 0x80000000, 2);
  right.set_prefix(FieldId::kDstIp, 0xc0000000, 2);
  EXPECT_TRUE(flowspace::is_covered_by(whole, {left, right}));
  EXPECT_FALSE(flowspace::is_covered_by(whole, {left}));
}

TEST(TernaryMatch, CoverBySelf) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const TernaryMatch m = random_match(rng);
    EXPECT_TRUE(flowspace::is_covered_by(m, {m}));
    EXPECT_TRUE(flowspace::is_covered_by(m, {TernaryMatch::wildcard()}));
  }
}

TEST(TernaryMatch, SamplePacketInsideMatch) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const TernaryMatch m = random_match(rng);
    EXPECT_TRUE(m.matches(m.sample_packet()));
  }
}

TEST(TernaryMatch, ToStringMentionsConstrainedFields) {
  TernaryMatch m;
  m.set_prefix(FieldId::kDstIp, 0x0a000000, 8).set_exact(FieldId::kDstPort, 80);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("dst_ip=10.0.0.0/8"), std::string::npos);
  EXPECT_NE(s.find("dst_port=80"), std::string::npos);
}

// --- actions ---------------------------------------------------------------

TEST(ActionList, CanonicalizationDedupes) {
  ActionList a{Action::drop(), Action::drop(), Action::forward(3)};
  EXPECT_EQ(a.size(), 2u);
  ActionList b{Action::forward(3), Action::drop()};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ActionList, ParallelUnion) {
  const ActionList a{Action::count(1)};
  const ActionList b{Action::forward(2)};
  const ActionList u = ActionList::parallel_union(a, b);
  EXPECT_TRUE(u.contains(ActionType::kCount));
  EXPECT_TRUE(u.contains(ActionType::kForward));
  EXPECT_EQ(u.size(), 2u);
}

TEST(ActionList, SequentialMergeRightOverridesRewrites) {
  const ActionList left{Action::set_field(FieldId::kDstIp, 1), Action::set_field(FieldId::kDstPort, 8080)};
  const ActionList right{Action::set_field(FieldId::kDstIp, 2), Action::forward(1)};
  const ActionList merged = ActionList::sequential_merge(left, right);
  // dst_ip rewrite overridden by the right stage; dst_port survives.
  bool saw_ip2 = false, saw_port = false;
  for (const Action& a : merged.actions()) {
    if (a.is_set_field() && a.field == FieldId::kDstIp) {
      EXPECT_EQ(a.arg, 2u);
      saw_ip2 = true;
    }
    if (a.is_set_field() && a.field == FieldId::kDstPort) saw_port = true;
  }
  EXPECT_TRUE(saw_ip2);
  EXPECT_TRUE(saw_port);
  EXPECT_TRUE(merged.contains(ActionType::kForward));
}

TEST(ActionList, SequentialMergeConsumesLeftForward) {
  const ActionList left{Action::forward(9)};
  const ActionList right{Action::forward(1)};
  const ActionList merged = ActionList::sequential_merge(left, right);
  ASSERT_EQ(merged.set_fields().size(), 0u);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.actions()[0].arg, 1u);
}

TEST(ActionList, RewritePacket) {
  const ActionList mods{Action::set_field(FieldId::kDstIp, 0x01020304)};
  Packet p;
  p.set(FieldId::kDstIp, 0x0a0a0a0a);
  EXPECT_EQ(mods.apply_rewrites(p).get(FieldId::kDstIp), 0x01020304u);
}

TEST(ActionList, RewriteMatchMakesFieldExact) {
  const ActionList mods{Action::set_field(FieldId::kDstIp, 0x01020304)};
  TernaryMatch m;
  m.set_prefix(FieldId::kDstIp, 0x0a000000, 8).set_exact(FieldId::kDstPort, 80);
  const TernaryMatch out = mods.apply_rewrites(m);
  EXPECT_EQ(out.field(FieldId::kDstIp).value, 0x01020304u);
  EXPECT_EQ(out.field(FieldId::kDstIp).mask, 0xffffffffu);
  EXPECT_EQ(out.field(FieldId::kDstPort).value, 80u);
}

TEST(ActionList, PreimageCompatible) {
  const ActionList mods{Action::set_field(FieldId::kDstIp, 0x0a000001)};
  TernaryMatch target;
  target.set_prefix(FieldId::kDstIp, 0x0a000000, 8).set_exact(FieldId::kDstPort, 443);
  auto pre = mods.rewrite_preimage(target);
  ASSERT_TRUE(pre.has_value());
  // dst_ip constraint is absorbed by the rewrite; dst_port remains.
  EXPECT_EQ(pre->field(FieldId::kDstIp).mask, 0u);
  EXPECT_EQ(pre->field(FieldId::kDstPort).value, 443u);
}

TEST(ActionList, PreimageConflictIsEmpty) {
  const ActionList mods{Action::set_field(FieldId::kDstIp, 0x0b000000)};
  TernaryMatch target;
  target.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  EXPECT_FALSE(mods.rewrite_preimage(target).has_value());
}

/// Property: pre-image is exact — p matches pre(m) iff rewrite(p) matches m.
TEST(ActionList, PreimagePointwiseCorrect) {
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Action> mods;
    if (rng.next_bool(0.7)) {
      mods.push_back(Action::set_field(
          FieldId::kDstIp, static_cast<uint32_t>(rng.next_below(4)) << 30));
    }
    if (rng.next_bool(0.4)) {
      mods.push_back(Action::set_field(FieldId::kDstPort,
                                       80 + static_cast<uint32_t>(rng.next_below(3))));
    }
    const ActionList list{ActionList(std::move(mods))};
    const TernaryMatch m = random_match(rng);
    const auto pre = list.rewrite_preimage(m);
    for (int k = 0; k < 20; ++k) {
      const Packet p = random_packet(rng);
      const bool via_rewrite = m.matches(list.apply_rewrites(p));
      const bool via_preimage = pre.has_value() && pre->matches(p);
      EXPECT_EQ(via_rewrite, via_preimage);
    }
  }
}

// --- rules and tables -------------------------------------------------------

TEST(FlowTable, PriorityOrderAndLookup) {
  TernaryMatch narrow, wide;
  narrow.set_prefix(FieldId::kDstIp, 0x0a0a0000, 16);
  wide.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  FlowTable t;
  const auto wide_id = t.insert(Rule::make(wide, ActionList{Action::forward(1)}, 10));
  const auto narrow_id = t.insert(Rule::make(narrow, ActionList{Action::forward(2)}, 20));
  EXPECT_EQ(t.position(narrow_id), 0u);
  EXPECT_EQ(t.position(wide_id), 1u);

  Packet p;
  p.set(FieldId::kDstIp, 0x0a0a0101);
  ASSERT_NE(t.lookup(p), nullptr);
  EXPECT_EQ(t.lookup(p)->id, narrow_id);
}

TEST(FlowTable, EqualPriorityStableOrder) {
  FlowTable t;
  const auto first = t.insert(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 5));
  const auto second = t.insert(Rule::make(TernaryMatch::wildcard(), ActionList{Action::forward(1)}, 5));
  EXPECT_LT(t.position(first), t.position(second));
}

TEST(FlowTable, EraseAndMissingLookups) {
  FlowTable t;
  const auto id = t.insert(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 1));
  EXPECT_TRUE(t.erase(id).has_value());
  EXPECT_FALSE(t.erase(id).has_value());
  EXPECT_THROW(t.rule(id), std::out_of_range);
  Packet p;
  EXPECT_EQ(t.lookup(p), nullptr);
}

TEST(FlowTable, DuplicateIdRejected) {
  FlowTable t;
  Rule r = Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 1);
  t.insert(r);
  EXPECT_THROW(t.insert(r), std::invalid_argument);
}

TEST(RuleIndex, FindsAllOverlaps) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    RuleIndex index;
    std::vector<Rule> rules;
    for (int i = 0; i < 40; ++i) {
      rules.push_back(testutil::random_rule(rng, i));
      index.insert(rules.back().id, rules.back().match);
    }
    const TernaryMatch probe = random_match(rng);
    auto found = index.find_overlapping(probe);
    std::unordered_set<flowspace::RuleId> found_set(found.begin(), found.end());
    for (const Rule& r : rules) {
      EXPECT_EQ(found_set.count(r.id) != 0, r.match.overlaps(probe))
          << "rule " << r.to_string() << " probe " << probe.to_string();
    }
  }
}

TEST(RuleIndex, EraseRemoves) {
  RuleIndex index;
  TernaryMatch m;
  m.set_exact(FieldId::kIpProto, 6);
  index.insert(1, m);
  index.insert(2, TernaryMatch::wildcard());
  index.erase(1);
  auto found = index.find_overlapping(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 2u);
}

}  // namespace
}  // namespace ruletris
