// Traffic plane: Zipf/flow generator determinism, tuple-space slow-path
// equivalence with the linear full table, and flow-driven (FDRC) admission
// behaviour of the CacheFlow manager under the engine.
#include <gtest/gtest.h>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "switchsim/traffic_engine.h"
#include "tcam/soft_table.h"
#include "util/flow_stream.h"
#include "util/zipf.h"

namespace ruletris {
namespace {

using classbench::generate_monitor;
using classbench::generate_router;
using dag::build_min_dag;
using flowspace::FlowTable;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;
using switchsim::TrafficConfig;
using switchsim::TrafficEngine;
using switchsim::TrafficReport;
using tcam::CacheFlowManager;
using tcam::SoftTable;
using util::FlowStream;
using util::Rng;
using util::ZipfSampler;

TEST(Zipf, RanksAreInUniverseAndSkewed) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(42);
  std::vector<size_t> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const size_t r = zipf.sample(rng);
    ASSERT_LT(r, 1000u);
    ++counts[r];
  }
  // Heavy head: rank 0 must dominate a deep-tail rank by a wide margin.
  EXPECT_GT(counts[0], 20u * std::max<size_t>(1, counts[900]));
  // And the head ranks outdraw uniform (20 per rank) many times over.
  EXPECT_GT(counts[0], 400u);
}

TEST(Zipf, AlphaZeroIsRoughlyUniform) {
  ZipfSampler zipf(100, 0.0);
  Rng rng(7);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_GT(counts[r], 250u) << "rank " << r;  // expected 500 each
    EXPECT_LT(counts[r], 1000u) << "rank " << r;
  }
}

TEST(FlowStream, SameSeedSameStreamAcrossInstancesAndChurn) {
  FlowStream a(0x5eed, 5000, 1.1);
  FlowStream b(0x5eed, 5000, 1.1);
  for (uint64_t e = 0; e < 3; ++e) {
    for (uint64_t i = 0; i < 2000; ++i) {
      const auto ea = a.at(e, i);
      const auto eb = b.at(e, i);
      ASSERT_EQ(ea.rank, eb.rank) << "epoch " << e << " index " << i;
      ASSERT_EQ(ea.flow_id, eb.flow_id);
    }
    ASSERT_EQ(a.churn(e, 50), b.churn(e, 50));
  }
}

TEST(FlowStream, ArrivalsAreIndexAddressableNotSequential) {
  // Counter-based generation: reading indexes out of order (as parallel
  // shards do) yields exactly the in-order stream.
  FlowStream fwd(9, 1000, 1.0);
  FlowStream rev(9, 1000, 1.0);
  std::vector<FlowStream::Event> in_order, reversed(500);
  for (uint64_t i = 0; i < 500; ++i) in_order.push_back(fwd.at(0, i));
  for (uint64_t i = 500; i-- > 0;) reversed[i] = rev.at(0, i);
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_EQ(in_order[i].rank, reversed[i].rank);
    ASSERT_EQ(in_order[i].flow_id, reversed[i].flow_id);
  }
}

TEST(FlowStream, DistinctSeedsDistinctStreams) {
  FlowStream a(1, 5000, 1.1);
  FlowStream b(2, 5000, 1.1);
  size_t differing = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    if (a.at(0, i).flow_id != b.at(0, i).flow_id) ++differing;
  }
  EXPECT_GT(differing, 450u);  // essentially everywhere
}

TEST(FlowStream, ChurnRemapsIdentityButKeepsRankPopularity) {
  FlowStream s(11, 100, 1.0);
  const uint64_t before = s.flow_id(3);
  // Remap until slot 3 turns over (uniform churn: a few rounds suffice).
  for (uint64_t e = 0; e < 50 && s.flow_id(3) == before; ++e) s.churn(e, 100);
  EXPECT_NE(s.flow_id(3), before);
}

// --- tuple-space slow path ------------------------------------------------

TEST(SoftTable, MatchesLinearScanUnderChurn) {
  Rng rng(21);
  auto rules = generate_monitor(300, rng);  // shared priority bands: real ties
  FlowTable table{rules};
  SoftTable soft(table.rules());
  ASSERT_EQ(soft.size(), table.size());
  ASSERT_LT(soft.tuple_count(), 60u);

  auto check = [&](const char* when) {
    for (int i = 0; i < 400; ++i) {
      const Packet p = switchsim::synth_packet(
          table.rules(), util::hash_pair(97, static_cast<uint64_t>(i)));
      const Rule* lin = table.lookup(p);
      const Rule* tss = soft.lookup(p);
      ASSERT_EQ(lin == nullptr, tss == nullptr) << when;
      if (lin != nullptr) {
        ASSERT_EQ(lin->id, tss->id) << when;
      }
    }
  };
  check("after build");

  // Churn: delete a third, insert fresh rules, re-check equivalence.
  std::vector<RuleId> ids;
  for (const Rule& r : table.rules()) ids.push_back(r.id);
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(table.erase(ids[i]).has_value());
    ASSERT_TRUE(soft.erase(ids[i]));
  }
  check("after erases");
  for (int i = 0; i < 80; ++i) {
    Rule fresh = classbench::random_monitor_rule(300, rng);
    table.insert(fresh);
    soft.insert(fresh);
  }
  check("after inserts");
  ASSERT_EQ(soft.size(), table.size());
}

TEST(SoftTable, IdenticalMatchesSharedBucketTieBreak) {
  // Two rules with the same match: higher priority wins; at equal priority
  // the earlier insert wins (FlowTable's stable order).
  flowspace::TernaryMatch m;
  m.set_prefix(flowspace::FieldId::kDstIp, 0x0a000000, 8);
  const Rule low = Rule::make(m, {flowspace::Action::forward(1)}, 5);
  const Rule high = Rule::make(m, {flowspace::Action::forward(2)}, 9);
  const Rule tie = Rule::make(m, {flowspace::Action::forward(3)}, 9);

  SoftTable soft;
  soft.insert(low);
  soft.insert(high);
  soft.insert(tie);
  Packet p = m.sample_packet();
  ASSERT_NE(soft.lookup(p), nullptr);
  EXPECT_EQ(soft.lookup(p)->id, high.id);  // 9 beats 5; first 9 beats second
  ASSERT_TRUE(soft.erase(high.id));
  EXPECT_EQ(soft.lookup(p)->id, tie.id);
  ASSERT_TRUE(soft.erase(tie.id));
  EXPECT_EQ(soft.lookup(p)->id, low.id);
}

// --- engine determinism and admission ------------------------------------

TrafficReport engine_run(const FlowTable& fib, const dag::DependencyGraph& graph,
                         CacheFlowManager::AdmissionPolicy policy,
                         size_t threads, uint64_t seed) {
  CacheFlowManager mgr(fib.rules(), graph, CacheFlowManager::Mode::kDagFirmware,
                       64);
  TrafficConfig cfg;
  cfg.flows = 5000;
  cfg.zipf_alpha = 1.1;
  cfg.churn_rate = 0.01;
  cfg.packets_per_epoch = 4000;
  cfg.epochs = 3;
  cfg.seed = seed;
  cfg.n_threads = threads;
  cfg.policy = policy;
  cfg.rebalance_swaps = 24;
  TrafficEngine engine(mgr, fib.rules(), cfg);
  return engine.run();
}

TEST(TrafficEngine, BitIdenticalAcrossRunsAndThreadCounts) {
  Rng rng(33);
  const FlowTable fib{generate_router(150, rng)};
  const auto graph = build_min_dag(fib);
  const auto fdrc = CacheFlowManager::AdmissionPolicy::kFlowDriven;

  const TrafficReport serial = engine_run(fib, graph, fdrc, 1, 77);
  const TrafficReport pooled = engine_run(fib, graph, fdrc, 4, 77);
  const TrafficReport rerun = engine_run(fib, graph, fdrc, 4, 77);

  EXPECT_EQ(serial.fast_hits, pooled.fast_hits);
  EXPECT_EQ(serial.hit_checksum, pooled.hit_checksum);
  EXPECT_EQ(serial.layout_checksum, pooled.layout_checksum);
  EXPECT_EQ(pooled.hit_checksum, rerun.hit_checksum);
  EXPECT_EQ(pooled.layout_checksum, rerun.layout_checksum);
  EXPECT_EQ(serial.swaps, pooled.swaps);
  EXPECT_EQ(serial.consistency_violations, 0u);
  EXPECT_EQ(pooled.consistency_violations, 0u);

  const TrafficReport other_seed = engine_run(fib, graph, fdrc, 1, 78);
  EXPECT_NE(serial.hit_checksum, other_seed.hit_checksum);
}

TEST(TrafficEngine, FlowDrivenAdmissionLearnsTheHotSet) {
  Rng rng(44);
  const FlowTable fib{generate_router(200, rng)};
  const auto graph = build_min_dag(fib);

  const TrafficReport stat = engine_run(
      fib, graph, CacheFlowManager::AdmissionPolicy::kStaticDag, 1, 9);
  const TrafficReport flow = engine_run(
      fib, graph, CacheFlowManager::AdmissionPolicy::kFlowDriven, 1, 9);
  EXPECT_EQ(stat.swaps, 0u);  // static never adapts
  EXPECT_GT(flow.swaps, 0u);
  // Steady state (last epoch) must clearly beat the traffic-blind layout.
  EXPECT_GT(flow.epochs.back().hit_rate(), stat.epochs.back().hit_rate());
  EXPECT_EQ(flow.consistency_violations, 0u);
  EXPECT_EQ(stat.consistency_violations, 0u);
}

TEST(CacheFlowFdrc, InstallCostCountsUncoveredDependencies) {
  Rng rng(55);
  const FlowTable fib{generate_router(80, rng)};
  const auto graph = build_min_dag(fib);
  CacheFlowManager mgr(fib.rules(), graph, CacheFlowManager::Mode::kDagFirmware,
                       64);

  RuleId dependent = 0;
  for (const Rule& r : fib.rules()) {
    if (!graph.successors(r.id).empty()) {
      dependent = r.id;
      break;
    }
  }
  ASSERT_NE(dependent, 0u);
  const size_t deps = graph.successors(dependent).size();
  EXPECT_EQ(mgr.install_cost(dependent), 1 + deps);
  // Caching every dependency drops the marginal cost to a single entry.
  for (RuleId dep : graph.successors(dependent)) ASSERT_TRUE(mgr.install(dep));
  EXPECT_EQ(mgr.install_cost(dependent), 1u);
}

TEST(CacheFlowFdrc, RebalanceAdmitsTheMeasuredHotRule) {
  Rng rng(66);
  const FlowTable fib{generate_router(80, rng)};
  const auto graph = build_min_dag(fib);
  CacheFlowManager mgr(fib.rules(), graph, CacheFlowManager::Mode::kDagFirmware,
                       48);
  mgr.warm(CacheFlowManager::AdmissionPolicy::kStaticDag, 32);

  // Manufacture traffic: one uncached rule gets all the hits.
  RuleId hot = 0;
  for (const Rule& r : fib.rules()) {
    if (!mgr.is_cached(r.id)) {
      hot = r.id;
      break;
    }
  }
  ASSERT_NE(hot, 0u);
  mgr.add_hits(hot, 1000);

  const auto plan = mgr.plan_swaps(4);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front().in, hot);
  EXPECT_GT(mgr.rebalance(CacheFlowManager::AdmissionPolicy::kFlowDriven, 4), 0u);
  EXPECT_TRUE(mgr.is_cached(hot));
}

}  // namespace
}  // namespace ruletris
