// Sharded compile pipeline + fleet runtime tests: ShardPlan partition
// soundness (sharded union == unsharded snapshot), lock-free publication,
// the pipelined session path against the classic vector-log path, bursty
// workload determinism, and whole-fleet bit-identity across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "compiler/composed_node.h"
#include "compiler/ruletris_compiler.h"
#include "compiler/shard_plan.h"
#include "frozen/publish.h"
#include "runtime/controller.h"
#include "runtime/session.h"
#include "runtime/sharded_controller.h"
#include "runtime/workload.h"
#include "test_util.h"

namespace ruletris {
namespace {

using compiler::CompileSnapshot;
using compiler::PolicySpec;
using compiler::ShardPlan;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;
using testutil::Rng;

/// Rules whose dst prefixes are at least as deep as the plan's bucket, so
/// the prefix partition is closed (no cross-shard overlap is possible).
std::vector<Rule> bucketed_rules(size_t n, uint64_t seed, size_t n_buckets) {
  Rng rng(seed);
  std::vector<Rule> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TernaryMatch m;
    const uint32_t bucket = static_cast<uint32_t>(rng.next_below(n_buckets));
    const uint32_t len = 8 + static_cast<uint32_t>(rng.next_below(9));
    m.set_prefix(FieldId::kDstIp, (bucket << 24) | (rng.next_u32() >> 8), len);
    if (rng.next_bool(0.5)) {
      m.set_prefix(FieldId::kSrcIp, rng.next_u32(),
                   4 + static_cast<uint32_t>(rng.next_below(8)));
    }
    out.push_back(Rule::make(m, testutil::random_actions(rng),
                             static_cast<int32_t>(100 + rng.next_below(50))));
  }
  return out;
}

TEST(ShardPlanTest, SplitPreservesEveryRuleAndRoutesDeterministically) {
  const ShardPlan plan = ShardPlan::make(4);
  std::map<std::string, FlowTable> tables;
  tables.emplace("t", FlowTable{bucketed_rules(80, 11, 16)});

  const auto parts = plan.split(tables);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (size_t k = 0; k < parts.size(); ++k) {
    for (const Rule& r : parts[k].at("t").rules()) {
      EXPECT_EQ(plan.shard_of(r), k);
      ++total;
    }
  }
  EXPECT_EQ(total, 80u);
}

TEST(ShardPlanTest, CoarseRulesLandInCatchAllShardZero) {
  const ShardPlan plan = ShardPlan::make(4);
  TernaryMatch coarse;
  coarse.set_prefix(FieldId::kDstIp, 0x0a000000u, 4);  // /4 < bucket_bits
  EXPECT_TRUE(plan.catch_all(coarse));
  EXPECT_EQ(plan.shard_of(coarse), 0u);

  TernaryMatch wildcard;  // no dst constraint at all
  EXPECT_TRUE(plan.catch_all(wildcard));
  EXPECT_EQ(plan.shard_of(wildcard), 0u);
}

TEST(ShardPlanTest, BucketAlignedPartitionIsClosed) {
  const ShardPlan plan = ShardPlan::make(3);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{bucketed_rules(60, 21, 16)});
  tables.emplace("rtr", FlowTable{bucketed_rules(40, 22, 16)});
  EXPECT_EQ(ShardPlan::cross_shard_overlaps(plan.split(tables)), 0u);
}

TEST(ShardPlanTest, CoarseRulesBreakClosureAndAreDetected) {
  const ShardPlan plan = ShardPlan::make(3);
  std::vector<Rule> rules = bucketed_rules(40, 31, 16);
  // A near-wildcard monitor rule overlaps every bucket.
  Rng rng(1);
  TernaryMatch coarse;
  coarse.set_prefix(FieldId::kDstIp, 0, 0);
  rules.push_back(Rule::make(coarse, testutil::random_actions(rng), 10));
  std::map<std::string, FlowTable> tables;
  tables.emplace("t", FlowTable{std::move(rules)});
  EXPECT_GT(ShardPlan::cross_shard_overlaps(plan.split(tables)), 0u);
}

TEST(ShardPlanTest, ShardedCompileUnionEqualsUnshardedSnapshot) {
  // Same rule objects (same ids) compiled whole vs. per shard: because the
  // partition is closed, the union of per-shard snapshots must reproduce
  // the unsharded compile exactly — entries, reps and visible edges.
  const ShardPlan plan = ShardPlan::make(3);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{bucketed_rules(50, 41, 16)});
  tables.emplace("rtr", FlowTable{bucketed_rules(30, 42, 16)});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));

  compiler::RuleTrisCompiler whole(spec, tables);
  const CompileSnapshot expected =
      dynamic_cast<const compiler::ComposedNode&>(whole.root()).snapshot();

  const auto parts = plan.split(tables);
  ASSERT_EQ(ShardPlan::cross_shard_overlaps(parts), 0u);
  std::vector<CompileSnapshot> shards;
  for (const auto& part : parts) {
    compiler::RuleTrisCompiler one(spec, part);
    shards.push_back(
        dynamic_cast<const compiler::ComposedNode&>(one.root()).snapshot());
  }
  EXPECT_EQ(compiler::merge_shard_snapshots(std::move(shards)), expected);
}

TEST(PublishRingTest, SealsInOrderAndReadsBack) {
  frozen::PublishRing<int> ring(3);
  EXPECT_EQ(ring.sealed(), 0u);
  EXPECT_FALSE(ring.closed());
  ring.publish(std::make_unique<int>(10));
  ring.publish(std::make_unique<int>(20));
  EXPECT_EQ(ring.sealed(), 2u);
  EXPECT_EQ(ring.get(1), 10);
  EXPECT_EQ(ring.get(2), 20);
  ring.publish(std::make_unique<int>(30));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_EQ(ring.sealed(), 3u);
  EXPECT_THROW(ring.publish(std::make_unique<int>(40)), std::runtime_error);
}

/// A PublishRing-backed source fed all epochs upfront must reproduce the
/// classic vector-log session exactly, fault machinery included.
TEST(PipelinedSessionTest, ClosedRingMatchesVectorLogUnderFaults) {
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{bucketed_rules(20, 51, 16)});
  tables.emplace("rtr", FlowTable{bucketed_rules(12, 52, 16)});
  runtime::ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = 30;
  churn.seed = 5;
  const runtime::CompiledWorkload workload =
      runtime::compile_churn_workload(spec, tables, churn);
  const auto log = runtime::encode_log(workload.epochs);

  runtime::SessionConfig sc;
  sc.knobs.window = 4;
  sc.seed = 77;
  sc.knobs.faults = runtime::FaultSpec::chaos();
  sc.tcam_capacity = workload.suggested_capacity();

  runtime::SwitchSession classic(sc, *log);
  const runtime::SessionStats want = classic.run(workload.final_rules);
  ASSERT_TRUE(want.converged);

  // Same epochs through a sealed ring, driven by pump_published. Constant
  // ready time 0 matches VectorEpochSource (the strictly-increasing
  // contract only carries the horizon rule, which a complete source never
  // exercises), so the virtual trajectories must coincide exactly.
  frozen::PublishRing<runtime::SealedEpoch> ring(log->size());
  for (size_t e = 0; e < log->size(); ++e) {
    auto rec = std::make_unique<runtime::SealedEpoch>();
    rec->wire = (*log)[e];
    rec->ready_vt_ms = 0.0;
    ring.publish(std::move(rec));
  }
  ring.close();

  class Source final : public runtime::EpochSource {
   public:
    explicit Source(const frozen::PublishRing<runtime::SealedEpoch>& r)
        : ring_(r) {}
    uint64_t available() const override { return ring_.sealed(); }
    bool complete() const override { return ring_.closed(); }
    const runtime::EncodedEpoch& at(uint64_t e) const override {
      return ring_.get(e).wire;
    }
    double ready_ms(uint64_t e) const override {
      return ring_.get(e).ready_vt_ms;
    }

   private:
    const frozen::PublishRing<runtime::SealedEpoch>& ring_;
  };
  Source source(ring);
  runtime::SwitchSession piped(sc, source);
  piped.start();
  while (!piped.done()) {
    ASSERT_TRUE(piped.pump_published() || piped.done());
  }
  const runtime::SessionStats got = piped.finalize(workload.final_rules);

  EXPECT_TRUE(got.converged);
  EXPECT_EQ(got.epochs, want.epochs);
  EXPECT_EQ(got.data_frames_sent, want.data_frames_sent);
  EXPECT_EQ(got.retransmits, want.retransmits);
  EXPECT_EQ(got.restarts, want.restarts);
  EXPECT_EQ(got.entry_writes, want.entry_writes);
  EXPECT_EQ(got.moves, want.moves);
  EXPECT_DOUBLE_EQ(got.makespan_ms, want.makespan_ms);
}

TEST(BurstyWorkloadTest, DeterministicAndOpAccounted) {
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{bucketed_rules(16, 61, 16)});
  tables.emplace("rtr", FlowTable{bucketed_rules(10, 62, 16)});
  runtime::ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = 20;
  churn.seed = 9;
  churn.burst.enabled = true;
  churn.burst.continue_p = 0.7;
  churn.burst.delete_burst_p = 0.3;

  // Pin both runs to one rule-id namespace: ids are allocated from a
  // process-global counter otherwise, so back-to-back runs would differ in
  // wire bytes even though the streams are structurally identical. (The
  // sharded controller pins every switch the same way.)
  const auto run = [&] {
    flowspace::RuleId ids = 1u << 20;
    flowspace::ScopedRuleIdNamespace ns(&ids);
    return runtime::compile_churn_workload(spec, tables, churn);
  };
  const runtime::CompiledWorkload a = run();
  const runtime::CompiledWorkload b = run();

  ASSERT_EQ(a.epochs.size(), churn.updates + 1);
  ASSERT_EQ(a.epoch_ops.size(), a.epochs.size());
  size_t total = 0;
  bool any_multi = false;
  for (size_t e = 1; e < a.epoch_ops.size(); ++e) {
    EXPECT_GE(a.epoch_ops[e], 1u);
    any_multi = any_multi || a.epoch_ops[e] > 1;
    total += a.epoch_ops[e];
  }
  total += a.epoch_ops[0];
  EXPECT_EQ(total, a.rule_ops);
  EXPECT_TRUE(any_multi) << "geometric bursts never exceeded one op";

  EXPECT_EQ(a.rule_ops, b.rule_ops);
  EXPECT_EQ(a.final_rules.size(), b.final_rules.size());
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(proto::encode_batch(a.epochs[e]), proto::encode_batch(b.epochs[e]))
        << "epoch " << e + 1;
  }
}

TEST(BurstyWorkloadTest, InsertBurstsShareTheLocalityBlock) {
  // With delete bursts disabled, every churn epoch is an insert burst; all
  // rules of one burst must share the dst /locality_bits block.
  runtime::ChurnSpec churn;
  churn.updates = 6;
  churn.seed = 3;
  churn.burst.enabled = true;
  churn.burst.continue_p = 0.9;  // long bursts
  churn.burst.delete_burst_p = 0.0;
  churn.burst.locality_bits = 12;

  const PolicySpec spec = PolicySpec::leaf("mon");
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{bucketed_rules(4, 71, 16)});

  runtime::ChurnEngine engine(spec, tables, churn);
  (void)engine.step();  // initial install
  while (!engine.done()) {
    const size_t before = engine.frontend().leaf("mon").table().size();
    const runtime::ChurnEngine::Step step = engine.step();
    const auto& rules = engine.frontend().leaf("mon").table().rules();
    ASSERT_EQ(rules.size(), before + step.ops);
    // The freshest step.ops rules (highest ids) form the burst.
    std::vector<Rule> burst;
    for (const Rule& r : rules) burst.push_back(r);
    std::sort(burst.begin(), burst.end(),
              [](const Rule& x, const Rule& y) { return x.id < y.id; });
    burst.erase(burst.begin(), burst.end() - static_cast<long>(step.ops));
    const uint32_t top = 0xffffffffu << (32 - 12);
    const uint32_t block =
        burst.front().match.field(FieldId::kDstIp).value & top;
    for (const Rule& r : burst) {
      const auto& dst = r.match.field(FieldId::kDstIp);
      EXPECT_EQ(dst.value & top, block);
      EXPECT_EQ(dst.mask & top, top) << "prefix shallower than the block";
    }
  }
}

TEST(ShardedFleetTest, BitIdenticalAcrossThreadCountsAndReplayClean) {
  runtime::FleetSpec spec;
  spec.n_switches = 6;
  spec.n_shards = 3;
  spec.updates_per_switch = 10;
  spec.seed = 12;
  spec.audit_stride = 1;  // replay-audit every switch
  spec.tcam_capacity = 1024;

  runtime::FleetReport serial;
  {
    spec.n_threads = 1;
    serial = runtime::ShardedController(spec).run();
  }
  EXPECT_TRUE(serial.runtime.all_converged);
  EXPECT_TRUE(serial.replay_ok);
  EXPECT_EQ(serial.replay_audits, 6u);
  EXPECT_GT(serial.rule_ops, 0u);
  EXPECT_GT(serial.updates_per_s(), 0.0);

  // Oversubscribed relative to this machine: widens the interleaving space
  // the determinism machinery must be immune to.
  for (const size_t threads : {2u, 5u}) {
    spec.n_threads = threads;
    const runtime::FleetReport parallel = runtime::ShardedController(spec).run();
    EXPECT_EQ(parallel.fleet_fingerprint, serial.fleet_fingerprint)
        << threads << " threads";
    EXPECT_EQ(parallel.delta_fingerprint, serial.delta_fingerprint)
        << threads << " threads";
    EXPECT_EQ(parallel.rule_ops, serial.rule_ops);
    EXPECT_DOUBLE_EQ(parallel.makespan_ms, serial.makespan_ms);
    EXPECT_DOUBLE_EQ(parallel.compile_vt_ms, serial.compile_vt_ms);
    EXPECT_TRUE(parallel.runtime.all_converged);
    EXPECT_TRUE(parallel.replay_ok);
  }
}

TEST(ShardedFleetTest, SurvivesFaultyWiresDeterministically) {
  runtime::FleetSpec spec;
  spec.n_switches = 4;
  spec.n_shards = 2;
  spec.updates_per_switch = 8;
  spec.seed = 8;
  spec.knobs.faults = runtime::FaultSpec::chaos();
  spec.fault_seed = 3;
  spec.audit_stride = 2;
  spec.tcam_capacity = 1024;

  spec.n_threads = 1;
  const runtime::FleetReport a = runtime::ShardedController(spec).run();
  spec.n_threads = 3;
  const runtime::FleetReport b = runtime::ShardedController(spec).run();

  EXPECT_TRUE(a.runtime.all_converged);
  EXPECT_GT(a.runtime.retransmits + a.runtime.restarts, 0u)
      << "chaos mix exercised nothing";
  EXPECT_EQ(a.fleet_fingerprint, b.fleet_fingerprint);
  EXPECT_EQ(a.delta_fingerprint, b.delta_fingerprint);
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
}

TEST(ScopedRuleIdTest, RedirectsAndRestores) {
  flowspace::RuleId counter = 1000;
  const flowspace::RuleId global_before = flowspace::next_rule_id();
  {
    flowspace::ScopedRuleIdNamespace ns(&counter);
    EXPECT_EQ(flowspace::next_rule_id(), 1000u);
    EXPECT_EQ(flowspace::next_rule_id(), 1001u);
    flowspace::ensure_rule_id_floor(2000);
    EXPECT_EQ(flowspace::next_rule_id(), 2001u);
    {
      flowspace::RuleId inner = 50;
      flowspace::ScopedRuleIdNamespace ns2(&inner);
      EXPECT_EQ(flowspace::next_rule_id(), 50u);
    }
    EXPECT_EQ(flowspace::next_rule_id(), 2002u);
  }
  EXPECT_EQ(flowspace::next_rule_id(), global_before + 1);
}

}  // namespace
}  // namespace ruletris
