// Multi-table pipeline (Sec. VIII extension): semantic equivalence with the
// single-table sequential composition, and the update-cost decoupling it
// exists for.
#include <gtest/gtest.h>

#include <map>

#include "classbench/generator.h"
#include "compiler/leaf.h"
#include "compiler/ruletris_compiler.h"
#include "switchsim/adapters.h"
#include "switchsim/pipeline_switch.h"
#include "test_util.h"

namespace ruletris {
namespace {

using compiler::LeafNode;
using compiler::PolicySpec;
using compiler::RuleTrisCompiler;
using compiler::TableUpdate;
using flowspace::ActionList;
using flowspace::FlowTable;
using flowspace::Packet;
using flowspace::Rule;
using switchsim::MultiTableSwitch;
using switchsim::to_messages;
using util::Rng;

/// Installs a leaf's full table+DAG into one pipeline stage.
void install_stage(MultiTableSwitch& sw, size_t stage, const LeafNode& leaf) {
  TableUpdate update;
  update.added = leaf.visible_rules_in_order();
  for (const Rule& r : update.added) update.dag.added_vertices.push_back(r.id);
  update.dag.added_edges = leaf.visible_graph().edges();
  ASSERT_TRUE(sw.deliver(stage, to_messages(update)).ok);
}

TEST(Pipeline, MatchesComposedSequentialSemantics) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const auto router = classbench::generate_router(60, rng);
    const auto nat = classbench::generate_nat(20, router, rng);

    // Reference: the composed single table.
    std::map<std::string, FlowTable> tables;
    tables.emplace("nat", FlowTable{nat});
    tables.emplace("router", FlowTable{router});
    RuleTrisCompiler composed(
        PolicySpec::sequential(PolicySpec::leaf("nat"), PolicySpec::leaf("router")),
        tables);
    const auto composed_rules = composed.root().visible_rules_in_order();

    // Pipeline: NAT in stage 0, router in stage 1, no composition at all.
    LeafNode nat_leaf{FlowTable{nat}};
    LeafNode router_leaf{FlowTable{router}};
    MultiTableSwitch pipeline({64, 128});
    install_stage(pipeline, 0, nat_leaf);
    install_stage(pipeline, 1, router_leaf);

    for (int k = 0; k < 500; ++k) {
      Packet p;
      p.set(flowspace::FieldId::kDstIp,
            rng.next_bool(0.5) ? (0xc8000000u | (rng.next_u32() & 0xffffffu))
                               : rng.next_u32());
      p.set(flowspace::FieldId::kIpProto, 6);
      p.set(flowspace::FieldId::kDstPort, 80);
      const ActionList via_pipeline = pipeline.process(p);
      const Rule* hit = testutil::lookup_ordered(composed_rules, p);
      const ActionList via_composed = hit ? hit->actions : ActionList{};
      EXPECT_EQ(via_pipeline, via_composed)
          << "pipeline and composed table disagree on a packet";
    }
  }
}

TEST(Pipeline, UpdateTouchesOnlyItsStage) {
  Rng rng(32);
  const auto router = classbench::generate_router(200, rng);
  const auto nat = classbench::generate_nat(30, router, rng);

  LeafNode nat_leaf{FlowTable{nat}};
  LeafNode router_leaf{FlowTable{router}};
  MultiTableSwitch pipeline({64, 256});
  install_stage(pipeline, 0, nat_leaf);
  install_stage(pipeline, 1, router_leaf);

  const auto router_stats_before = pipeline.tcam(1).stats();

  // Replace a NAT translation: only stage 0 sees TCAM activity, and the
  // update is a handful of entry writes regardless of router size.
  const Rule fresh = classbench::random_nat_rule(router, 30, rng);
  const auto removed = nat_leaf.remove(nat.front().id);
  const auto added = nat_leaf.insert(fresh);
  const auto m1 = pipeline.deliver(0, to_messages(removed));
  const auto m2 = pipeline.deliver(0, to_messages(added));
  ASSERT_TRUE(m1.ok);
  ASSERT_TRUE(m2.ok);
  EXPECT_LE(m1.entry_writes + m2.entry_writes, 3u);

  const auto router_stats_after = pipeline.tcam(1).stats();
  EXPECT_EQ(router_stats_before.entry_writes, router_stats_after.entry_writes)
      << "a NAT update must not move router entries";
}

TEST(Pipeline, StageMissIsIdentity) {
  MultiTableSwitch pipeline({8, 8});
  // Only stage 1 has a rule.
  Rng rng(33);
  const auto router = classbench::generate_router(4, rng);
  LeafNode router_leaf{FlowTable{router}};
  TableUpdate update;
  update.added = router_leaf.visible_rules_in_order();
  for (const Rule& r : update.added) update.dag.added_vertices.push_back(r.id);
  update.dag.added_edges = router_leaf.visible_graph().edges();
  ASSERT_TRUE(pipeline.deliver(1, to_messages(update)).ok);

  Packet p;
  p.set(flowspace::FieldId::kDstIp, 0x0a000001);
  const ActionList result = pipeline.process(p);
  // Stage 0 misses, stage 1 decides: result equals the router's decision.
  const flowspace::Rule* hit = pipeline.tcam(1).lookup(p);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(result, hit->actions);
}

TEST(Pipeline, MetricsAndChannelAccounting) {
  MultiTableSwitch pipeline({8, 8});
  TableUpdate update;
  Rng rng(34);
  Rule r = testutil::random_rule(rng, 5);
  update.added.push_back(r);
  update.dag.added_vertices.push_back(r.id);
  const auto metrics = pipeline.deliver(0, to_messages(update));
  EXPECT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.entry_writes, 1u);
  EXPECT_GT(metrics.channel_ms, 0.0);
  EXPECT_EQ(pipeline.tcam(1).occupied(), 0u);
}

/// deliver_all with a thread pool must be bit-identical to the serial path:
/// same per-stage writes/moves, same final layouts, same deterministic
/// totals (only the wall-clock firmware_ms diagnostic may differ).
TEST(Pipeline, ParallelDeliverAllMatchesSequential) {
  Rng rng(35);

  auto build_stage_batches = [](Rng& rng) {
    // Four independent stages, each with its own leaf table and churn.
    std::vector<LeafNode> leaves;
    std::vector<std::vector<proto::MessageBatch>> rounds;
    std::vector<proto::MessageBatch> initial;
    for (size_t s = 0; s < 4; ++s) {
      const auto router = classbench::generate_router(40, rng);
      leaves.emplace_back(FlowTable{router});
      TableUpdate update;
      update.added = leaves.back().visible_rules_in_order();
      for (const Rule& r : update.added) update.dag.added_vertices.push_back(r.id);
      update.dag.added_edges = leaves.back().visible_graph().edges();
      initial.push_back(to_messages(update));
    }
    rounds.push_back(std::move(initial));
    for (int round = 0; round < 6; ++round) {
      std::vector<proto::MessageBatch> batches;
      for (size_t s = 0; s < 4; ++s) {
        const Rule fresh = testutil::random_rule(rng, 50 + round);
        const auto update = leaves[s].insert(fresh);
        batches.push_back(to_messages(update));
      }
      rounds.push_back(std::move(batches));
    }
    return rounds;
  };
  // One batch stream, applied to both switches — the encoded updates are
  // value objects, so serial and parallel see byte-identical input.
  const auto rounds = build_stage_batches(rng);

  MultiTableSwitch serial({64, 64, 64, 64});
  MultiTableSwitch parallel({64, 64, 64, 64});
  // clamp_to_hardware = false: this test is about pool determinism, so the
  // pool must actually run even on a single-core CI host.
  parallel.set_apply_threads(4, /*clamp_to_hardware=*/false);

  for (size_t round = 0; round < rounds.size(); ++round) {
    const auto ms = serial.deliver_all(rounds[round]);
    const auto mp = parallel.deliver_all(rounds[round]);
    ASSERT_TRUE(ms.ok);
    ASSERT_TRUE(mp.ok);
    ASSERT_EQ(ms.stages.size(), mp.stages.size());
    for (size_t s = 0; s < ms.stages.size(); ++s) {
      EXPECT_EQ(ms.stages[s].entry_writes, mp.stages[s].entry_writes);
      EXPECT_EQ(ms.stages[s].moves, mp.stages[s].moves);
      EXPECT_EQ(ms.stages[s].wire_bytes, mp.stages[s].wire_bytes);
      EXPECT_DOUBLE_EQ(ms.stages[s].channel_ms, mp.stages[s].channel_ms);
    }
    EXPECT_EQ(ms.total.entry_writes, mp.total.entry_writes);
    EXPECT_EQ(ms.total.moves, mp.total.moves);
    EXPECT_DOUBLE_EQ(ms.critical_path_ms, mp.critical_path_ms);
  }

  // Final device state matches slot for slot.
  for (size_t s = 0; s < 4; ++s) {
    const auto& ta = serial.tcam(s);
    const auto& tb = parallel.tcam(s);
    ASSERT_EQ(ta.capacity(), tb.capacity());
    for (size_t a = 0; a < ta.capacity(); ++a) {
      ASSERT_EQ(ta.at(a), tb.at(a)) << "stage " << s << " addr " << a;
    }
    EXPECT_TRUE(serial.firmware(s).layout_valid());
    EXPECT_TRUE(parallel.firmware(s).layout_valid());
  }
}

}  // namespace
}  // namespace ruletris
