// Property test for the wire codec (satellite b): randomized message
// batches must re-encode bit-identically after a decode, and every strict
// prefix of a valid encoding must be rejected with an exception rather
// than yielding garbage or undefined behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <variant>

#include "dag/dependency_graph.h"
#include "flowspace/rule.h"
#include "proto/codec.h"
#include "proto/messages.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::ActionType;
using flowspace::FieldId;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using proto::Bytes;
using proto::Message;
using proto::MessageBatch;
using util::Rng;

TernaryMatch random_match(Rng& rng) {
  TernaryMatch m;  // starts fully wildcarded
  for (FieldId f : flowspace::kAllFields) {
    const uint32_t width = flowspace::field_width(f);
    const uint32_t field_mask =
        width == 32 ? 0xffffffffu : ((1u << width) - 1);
    switch (rng.next_below(4)) {
      case 0:  // leave wildcarded
        break;
      case 1:
        m.set_exact(f, static_cast<uint32_t>(rng.next_u64()) & field_mask);
        break;
      case 2: {
        const uint32_t len = static_cast<uint32_t>(rng.next_below(width + 1));
        m.set_prefix(f, static_cast<uint32_t>(rng.next_u64()) & field_mask, len);
        break;
      }
      default: {
        const uint32_t mask = static_cast<uint32_t>(rng.next_u64()) & field_mask;
        m.set_ternary(f, static_cast<uint32_t>(rng.next_u64()) & mask, mask);
        break;
      }
    }
  }
  return m;
}

ActionList random_actions(Rng& rng) {
  const size_t n = rng.next_below(4);  // 0 = empty action list (drop-by-default)
  ActionList list;
  for (size_t i = 0; i < n; ++i) {
    switch (rng.next_below(5)) {
      case 0: list.add(Action::forward(static_cast<uint32_t>(rng.next_below(64)))); break;
      case 1: list.add(Action::drop()); break;
      case 2: list.add(Action::to_controller()); break;
      case 3: list.add(Action::count(static_cast<uint32_t>(rng.next_below(1u << 20)))); break;
      default:
        list.add(Action::set_field(
            flowspace::kAllFields[rng.next_below(flowspace::kNumFields)],
            static_cast<uint32_t>(rng.next_below(1u << 16))));
        break;
    }
  }
  return list;
}

Rule random_rule(Rng& rng) {
  Rule r;
  // Exercise degenerate ids and the full priority range, not just values
  // the compiler would produce.
  switch (rng.next_below(4)) {
    case 0: r.id = 0; break;
    case 1: r.id = UINT64_MAX; break;
    default: r.id = rng.next_u64(); break;
  }
  r.match = random_match(rng);
  r.actions = random_actions(rng);
  r.priority = static_cast<int32_t>(rng.next_u64());  // includes negatives
  return r;
}

Message random_message(Rng& rng) {
  switch (rng.next_below(5)) {
    case 0: return proto::FlowModAdd{random_rule(rng)};
    case 1: return proto::FlowModDelete{rng.next_u64()};
    case 2: return proto::FlowModModify{random_rule(rng)};
    case 3: {
      proto::DagUpdate du;
      const size_t nv = rng.next_below(5);
      const size_t ne = rng.next_below(5);
      for (size_t i = 0; i < nv; ++i) du.delta.added_vertices.push_back(rng.next_u64());
      for (size_t i = 0; i < nv; ++i) du.delta.removed_vertices.push_back(rng.next_u64());
      for (size_t i = 0; i < ne; ++i) du.delta.added_edges.emplace_back(rng.next_u64(), rng.next_u64());
      for (size_t i = 0; i < ne; ++i) du.delta.removed_edges.emplace_back(rng.next_u64(), rng.next_u64());
      return du;
    }
    default: return proto::Barrier{};
  }
}

MessageBatch random_batch(Rng& rng, size_t max_messages) {
  MessageBatch batch;
  const size_t n = rng.next_below(max_messages + 1);
  for (size_t i = 0; i < n; ++i) batch.push_back(random_message(rng));
  return batch;
}

bool messages_equal(const Message& a, const Message& b) {
  if (a.index() != b.index()) return false;
  if (const auto* add = std::get_if<proto::FlowModAdd>(&a)) {
    const auto& o = std::get<proto::FlowModAdd>(b);
    return add->rule.id == o.rule.id && add->rule.priority == o.rule.priority &&
           add->rule.match == o.rule.match && add->rule.actions == o.rule.actions;
  }
  if (const auto* del = std::get_if<proto::FlowModDelete>(&a)) {
    return del->id == std::get<proto::FlowModDelete>(b).id;
  }
  if (const auto* mod = std::get_if<proto::FlowModModify>(&a)) {
    const auto& o = std::get<proto::FlowModModify>(b);
    return mod->rule.id == o.rule.id && mod->rule.priority == o.rule.priority &&
           mod->rule.match == o.rule.match && mod->rule.actions == o.rule.actions;
  }
  if (const auto* du = std::get_if<proto::DagUpdate>(&a)) {
    const auto& o = std::get<proto::DagUpdate>(b);
    return du->delta.added_vertices == o.delta.added_vertices &&
           du->delta.removed_vertices == o.delta.removed_vertices &&
           du->delta.added_edges == o.delta.added_edges &&
           du->delta.removed_edges == o.delta.removed_edges;
  }
  return true;  // Barrier
}

TEST(ProtoRoundTrip, RandomBatchesReencodeBitIdentically) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    const MessageBatch batch = random_batch(rng, 12);
    const Bytes wire = proto::encode_batch(batch);
    const MessageBatch decoded = proto::decode_batch(wire);

    ASSERT_EQ(decoded.size(), batch.size()) << "seed " << seed;
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(messages_equal(batch[i], decoded[i]))
          << "seed " << seed << " message " << i;
    }
    EXPECT_EQ(proto::encode_batch(decoded), wire) << "seed " << seed;
  }
}

TEST(ProtoRoundTrip, EdgeRulesSurviveRoundTrip) {
  MessageBatch batch;
  // Fully degenerate rule: id 0, all-wildcard match, no actions, priority 0.
  batch.push_back(proto::FlowModAdd{Rule{}});
  // Extreme scalar values.
  Rule extremes;
  extremes.id = UINT64_MAX;
  extremes.priority = INT32_MIN;
  extremes.match.set_ternary(FieldId::kSrcIp, 0xffffffffu, 0xffffffffu);
  batch.push_back(proto::FlowModModify{extremes});
  batch.push_back(proto::FlowModDelete{0});
  batch.push_back(proto::DagUpdate{});  // empty delta
  batch.push_back(proto::Barrier{});

  const Bytes wire = proto::encode_batch(batch);
  const MessageBatch decoded = proto::decode_batch(wire);
  ASSERT_EQ(decoded.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(messages_equal(batch[i], decoded[i])) << "message " << i;
  }
  EXPECT_EQ(proto::encode_batch(decoded), wire);

  const auto& mod = std::get<proto::FlowModModify>(decoded[1]);
  EXPECT_EQ(mod.rule.priority, INT32_MIN);
  EXPECT_EQ(mod.rule.id, UINT64_MAX);
}

TEST(ProtoRoundTrip, EveryStrictPrefixThrows) {
  Rng rng(42);
  MessageBatch batch = random_batch(rng, 8);
  batch.push_back(proto::Barrier{});  // guarantee a non-empty encoding body
  const Bytes wire = proto::encode_batch(batch);
  ASSERT_GT(wire.size(), 4u);

  for (size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_THROW(proto::decode_batch(prefix), std::runtime_error)
        << "prefix length " << len;
  }
}

TEST(ProtoRoundTrip, StrictPrefixesOfManyRandomBatchesThrow) {
  for (uint64_t seed = 300; seed < 320; ++seed) {
    Rng rng(seed);
    MessageBatch batch = random_batch(rng, 6);
    batch.push_back(random_message(rng));  // never empty
    const Bytes wire = proto::encode_batch(batch);
    // Sample prefixes densely near the end (where a decoder is most likely
    // to over-read) and sparsely elsewhere.
    for (size_t len = 0; len < wire.size();
         len += (wire.size() - len > 32 ? 7 : 1)) {
      const Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(len));
      EXPECT_THROW(proto::decode_batch(prefix), std::runtime_error)
          << "seed " << seed << " prefix length " << len;
    }
  }
}

TEST(ProtoChecksum, ChecksumOkAcceptsPristineAndRejectsTruncated) {
  Rng rng(77);
  MessageBatch batch = random_batch(rng, 8);
  batch.push_back(proto::Barrier{});
  const Bytes wire = proto::encode_batch(batch);

  EXPECT_TRUE(proto::checksum_ok(wire));
  for (size_t len = 0; len < 4; ++len) {
    EXPECT_FALSE(proto::checksum_ok(Bytes(wire.begin(), wire.begin() + len)));
  }
}

/// Corruption fuzz (the CRC32 trailer): flipping every single bit of every
/// byte of an encoded batch must make decode_batch throw — a single-bit
/// error can never be parsed into a different batch. CRC32 detects all
/// single-bit errors, so this is exhaustive, not probabilistic.
TEST(ProtoChecksum, EverySingleBitFlipIsDetected) {
  Rng rng(88);
  MessageBatch batch = random_batch(rng, 6);
  batch.push_back(proto::Barrier{});
  const Bytes wire = proto::encode_batch(batch);

  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes damaged = wire;
      damaged[i] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(proto::checksum_ok(damaged)) << "byte " << i << " bit " << bit;
      EXPECT_THROW(proto::decode_batch(damaged), std::runtime_error)
          << "byte " << i << " bit " << bit;
    }
  }
}

/// Whole-byte corruption across many random batches: parse must either
/// throw (the CRC catches it) or — never — succeed on damaged bytes. The
/// undamaged wire must keep decoding bit-identically afterwards.
TEST(ProtoChecksum, RandomByteCorruptionNeverYieldsGarbage) {
  for (uint64_t seed = 500; seed < 520; ++seed) {
    Rng rng(seed);
    MessageBatch batch = random_batch(rng, 6);
    batch.push_back(random_message(rng));
    const Bytes wire = proto::encode_batch(batch);

    for (size_t i = 0; i < wire.size(); ++i) {
      Bytes damaged = wire;
      damaged[i] ^= static_cast<uint8_t>(1 + rng.next_below(255));  // never 0
      EXPECT_THROW(proto::decode_batch(damaged), std::runtime_error)
          << "seed " << seed << " byte " << i;
    }
    // The pristine bytes still round-trip after all that abuse.
    EXPECT_EQ(proto::encode_batch(proto::decode_batch(wire)), wire);
  }
}

}  // namespace
}  // namespace ruletris
