// Property tests for the indexed/parallel minimum-DAG builders, the
// allocation-free cover kernel, and the two-level rule index.
//
// The brute-force builder is the oracle: the indexed serial builder and the
// parallel builder must produce the exact same edge set on every table,
// including tables that hit the fragment budget (where all builders fall
// back to the same conservative policy, so serial and parallel must still be
// bit-identical even when they diverge from an unbounded oracle).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "flowspace/rule_index.h"
#include "flowspace/ternary.h"
#include "test_util.h"

namespace ruletris {
namespace {

using dag::build_min_dag;
using dag::build_min_dag_brute;
using dag::build_min_dag_parallel;
using dag::DependencyGraph;
using dag::MinDagBuildOptions;
using flowspace::CoverResult;
using flowspace::CoverScratch;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::RuleIndex;
using flowspace::TernaryMatch;
using flowspace::try_cover;
using util::Rng;

FlowTable random_table(Rng& rng, size_t n) {
  // Small-universe matches (test_util) overlap heavily, so these tables have
  // dense candidate sets and real between-rule cover relationships.
  std::vector<Rule> rules;
  rules.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rules.push_back(testutil::random_rule(rng, static_cast<int32_t>(n - i)));
  }
  return FlowTable{rules};
}

class MinDagBuilders : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinDagBuilders, SerialAndParallelMatchBruteForceOnRandomTables) {
  Rng rng(GetParam());
  for (const size_t n : {20ul, 60ul, 120ul}) {
    const FlowTable table = random_table(rng, n);
    const DependencyGraph oracle = build_min_dag_brute(table);
    // Default options: tables this small take the direct path.
    const DependencyGraph direct = build_min_dag(table);
    EXPECT_TRUE(direct == oracle) << "direct path diverged at n=" << n;
    // Force the indexed path despite the small-table cutoff.
    MinDagBuildOptions indexed_opts;
    indexed_opts.direct_cutoff = 0;
    const DependencyGraph serial = build_min_dag(table, indexed_opts);
    EXPECT_TRUE(serial == oracle) << "indexed serial diverged at n=" << n;
    for (const size_t threads : {1ul, 2ul, 4ul}) {
      MinDagBuildOptions opts;
      opts.n_threads = threads;
      opts.parallel_cutoff = 0;  // force the sharded path even for tiny tables
      opts.direct_cutoff = 0;    // ...and past the small-table shortcut
      const DependencyGraph parallel = build_min_dag_parallel(table, opts);
      EXPECT_TRUE(parallel == oracle)
          << "parallel diverged at n=" << n << " threads=" << threads;
    }
  }
}

TEST_P(MinDagBuilders, BuildersAgreeOnClassbenchProfiles) {
  Rng rng(GetParam() ^ 0xc1a55);
  const std::vector<Rule> profiles[] = {
      classbench::generate_router(150, rng),
      classbench::generate_monitor(100, rng),
      classbench::generate_firewall(80, rng),
  };
  for (const auto& rules : profiles) {
    const FlowTable table{rules};
    const DependencyGraph oracle = build_min_dag_brute(table);
    EXPECT_TRUE(build_min_dag(table) == oracle);  // direct path at these sizes
    EXPECT_TRUE(build_min_dag_parallel(table, 4) == oracle);
    MinDagBuildOptions indexed_opts;
    indexed_opts.direct_cutoff = 0;
    indexed_opts.parallel_cutoff = 0;
    EXPECT_TRUE(build_min_dag(table, indexed_opts) == oracle);
    indexed_opts.n_threads = 4;
    EXPECT_TRUE(build_min_dag_parallel(table, indexed_opts) == oracle);
  }
}

TEST_P(MinDagBuilders, DirectCutoffIsTransparent) {
  // The small-table shortcut must be invisible in the resulting edge set:
  // the same table built with the cutoff on (direct path) and off (indexed
  // path) agrees, and uses_direct_path reports which side of the crossover a
  // size lands on.
  Rng rng(GetParam() ^ 0xd1a3);
  const MinDagBuildOptions defaults;
  EXPECT_TRUE(dag::uses_direct_path(defaults.direct_cutoff - 1, defaults));
  EXPECT_FALSE(dag::uses_direct_path(defaults.direct_cutoff, defaults));
  MinDagBuildOptions disabled;
  disabled.direct_cutoff = 0;
  EXPECT_FALSE(dag::uses_direct_path(10, disabled));

  const FlowTable table = random_table(rng, 100);
  EXPECT_TRUE(build_min_dag(table, defaults) == build_min_dag(table, disabled));
}

TEST_P(MinDagBuilders, SerialAndParallelBitIdenticalUnderFragmentPressure) {
  // A tiny fragment budget makes the residue walk and the per-pair fallback
  // overflow constantly, triggering the conservative keep-the-edge policy.
  // Serial and parallel may then legitimately diverge from an unbounded
  // oracle, but they must still produce the exact same (sound) edge set.
  Rng rng(GetParam() ^ 0xf7a6);
  const FlowTable table = random_table(rng, 80);
  MinDagBuildOptions tight;
  tight.fragment_limit = 4;
  tight.residue_soft_limit = 2;
  tight.direct_cutoff = 0;  // the point is the indexed residue/fallback walk
  const DependencyGraph serial = build_min_dag(table, tight);

  MinDagBuildOptions par = tight;
  par.parallel_cutoff = 0;
  for (const size_t threads : {2ul, 4ul}) {
    par.n_threads = threads;
    EXPECT_TRUE(build_min_dag_parallel(table, par) == serial)
        << "threads=" << threads;
  }

  // Soundness: the tight budget may only add edges, never drop one.
  const DependencyGraph exact = build_min_dag(table);
  for (const auto& [u, v] : exact.edges()) {
    EXPECT_TRUE(serial.has_edge(u, v))
        << "overflow policy dropped real edge " << u << "->" << v;
  }
}

class CoverKernel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverKernel, TryCoverAgreesWithLegacyIsCoveredBy) {
  Rng rng(GetParam());
  CoverScratch scratch;
  for (int i = 0; i < 300; ++i) {
    const TernaryMatch m = testutil::random_match(rng);
    std::vector<TernaryMatch> cover;
    const size_t k = rng.next_below(6);
    for (size_t j = 0; j < k; ++j) cover.push_back(testutil::random_match(rng));

    const CoverResult r = try_cover(m, cover, scratch);
    ASSERT_NE(r, CoverResult::kOverflow);  // small universe, default budget
    EXPECT_EQ(r == CoverResult::kCovered, flowspace::is_covered_by(m, cover));
  }
}

TEST(CoverKernel, ScratchIsReusableAcrossQueries) {
  CoverScratch scratch;
  TernaryMatch wide;  // full wildcard
  std::vector<TernaryMatch> halves;
  for (uint32_t i = 0; i < 2; ++i) {
    TernaryMatch h;
    h.set_prefix(FieldId::kDstIp, i << 31, 1);
    halves.push_back(h);
  }
  // Same query twice through one scratch: identical answers, no stale state.
  EXPECT_EQ(try_cover(wide, halves, scratch), CoverResult::kCovered);
  EXPECT_EQ(try_cover(wide, halves, scratch), CoverResult::kCovered);
  // A not-covered query right after a covered one.
  std::vector<TernaryMatch> lone{halves[0]};
  EXPECT_EQ(try_cover(wide, lone, scratch), CoverResult::kNotCovered);
  EXPECT_EQ(try_cover(wide, halves, scratch), CoverResult::kCovered);
}

TEST(CoverKernel, TinyFragmentLimitOverflows) {
  TernaryMatch wide;  // full wildcard: needs fragmenting across all 8 pieces
  std::vector<TernaryMatch> cover;
  for (uint32_t i = 0; i < 8; ++i) {
    TernaryMatch p;
    p.set_prefix(FieldId::kDstIp, i << 29, 3);
    cover.push_back(p);
  }
  CoverScratch scratch;
  EXPECT_EQ(try_cover(wide, cover, scratch, /*fragment_limit=*/2),
            CoverResult::kOverflow);
  EXPECT_EQ(try_cover(wide, cover, scratch), CoverResult::kCovered);
  EXPECT_THROW(flowspace::is_covered_by(wide, cover, /*fragment_limit=*/2),
               std::runtime_error);
  EXPECT_TRUE(flowspace::is_covered_by(wide, cover));
}

class RuleIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuleIndexProperty, FindOverlappingMatchesLinearScan) {
  Rng rng(GetParam());
  RuleIndex index;
  std::vector<std::pair<RuleId, TernaryMatch>> entries;
  for (RuleId id = 1; id <= 200; ++id) {
    const TernaryMatch m = testutil::random_match(rng);
    index.insert(id, m);
    entries.emplace_back(id, m);
  }
  for (int q = 0; q < 100; ++q) {
    const TernaryMatch query = testutil::random_match(rng);
    std::vector<RuleId> got = index.find_overlapping(query);
    std::vector<RuleId> want;
    for (const auto& [id, m] : entries) {
      if (m.overlaps(query)) want.push_back(id);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(RuleIndexProperty, EraseKeepsBucketStorageTight) {
  Rng rng(GetParam() ^ 0x1d);
  RuleIndex index;
  std::vector<RuleId> live;
  for (RuleId id = 1; id <= 100; ++id) {
    index.insert(id, testutil::random_match(rng));
    live.push_back(id);
  }
  // approx_size() recomputes from bucket storage; erase() must prune emptied
  // buckets so the two never drift apart.
  while (!live.empty()) {
    const size_t victim = rng.next_below(live.size());
    index.erase(live[victim]);
    live.erase(live.begin() + static_cast<long>(victim));
    EXPECT_EQ(index.approx_size(), index.size());
    EXPECT_EQ(index.size(), live.size());
  }
  const RuleIndex::Stats empty_stats = index.stats();
  EXPECT_EQ(empty_stats.entries, 0u);
  EXPECT_EQ(empty_stats.buckets, 0u);
  EXPECT_EQ(empty_stats.largest_bucket, 0u);
}

TEST(RuleIndexStats, CountsBucketsAndEntries) {
  RuleIndex index;
  TernaryMatch tcp;
  tcp.set_exact(FieldId::kIpProto, 6);
  TernaryMatch udp;
  udp.set_exact(FieldId::kIpProto, 17);
  index.insert(1, tcp);
  index.insert(2, tcp);
  index.insert(3, udp);
  const RuleIndex::Stats s = index.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.buckets, 2u);
  EXPECT_EQ(s.largest_bucket, 2u);
  EXPECT_EQ(index.approx_size(), 3u);

  index.erase(1);
  index.erase(2);
  EXPECT_EQ(index.stats().buckets, 1u);  // tcp bucket pruned
  EXPECT_EQ(index.approx_size(), index.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinDagBuilders,
                         ::testing::Values(1u, 0xbeefu, 0x5eedu));
INSTANTIATE_TEST_SUITE_P(Seeds, CoverKernel, ::testing::Values(7u, 0xabcu));
INSTANTIATE_TEST_SUITE_P(Seeds, RuleIndexProperty,
                         ::testing::Values(11u, 0xf00du));

}  // namespace
}  // namespace ruletris
