// Algebraic property sweeps over the flow-space primitives. These laws are
// what every higher layer silently assumes; each is checked over a seeded
// family of random matches (parameterized by seed so failures name their
// universe).
#include <gtest/gtest.h>

#include "flowspace/action.h"
#include "flowspace/ternary.h"
#include "test_util.h"

namespace ruletris {
namespace {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::Packet;
using flowspace::TernaryMatch;
using testutil::random_match;
using testutil::random_packet;
using util::Rng;

class FlowspaceLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowspaceLaws, OverlapIsSymmetricAndConsistentWithIntersect) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const TernaryMatch a = random_match(rng);
    const TernaryMatch b = random_match(rng);
    EXPECT_EQ(a.overlaps(b), b.overlaps(a));
    EXPECT_EQ(a.overlaps(b), a.intersect(b).has_value());
  }
}

TEST_P(FlowspaceLaws, IntersectIsTheGreatestLowerBound) {
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 300; ++i) {
    const TernaryMatch a = random_match(rng);
    const TernaryMatch b = random_match(rng);
    const auto ab = a.intersect(b);
    if (!ab) continue;
    // Contained in both...
    EXPECT_TRUE(a.subsumes(*ab));
    EXPECT_TRUE(b.subsumes(*ab));
    // ...and pointwise exact: p in a∩b iff p in a and p in b.
    for (int k = 0; k < 20; ++k) {
      const Packet p = random_packet(rng);
      EXPECT_EQ(ab->matches(p), a.matches(p) && b.matches(p));
    }
    // Commutative.
    EXPECT_EQ(*ab, *b.intersect(a));
  }
}

TEST_P(FlowspaceLaws, SubsumptionIsAPartialOrder) {
  Rng rng(GetParam() + 2);
  for (int i = 0; i < 300; ++i) {
    const TernaryMatch a = random_match(rng);
    const TernaryMatch b = random_match(rng);
    const TernaryMatch c = random_match(rng);
    EXPECT_TRUE(a.subsumes(a));  // reflexive
    if (a.subsumes(b) && b.subsumes(a)) {
      EXPECT_EQ(a, b);  // antisymmetric
    }
    if (a.subsumes(b) && b.subsumes(c)) {
      EXPECT_TRUE(a.subsumes(c));  // transitive
    }
    // Subsume implies overlap (our matches are never empty by construction).
    if (a.subsumes(b)) {
      EXPECT_TRUE(a.overlaps(b));
    }
  }
}

TEST_P(FlowspaceLaws, SubtractThenIntersectPartitions) {
  Rng rng(GetParam() + 3);
  for (int i = 0; i < 200; ++i) {
    const TernaryMatch a = random_match(rng);
    const TernaryMatch b = random_match(rng);
    const auto pieces = a.subtract(b);
    const auto inter = a.intersect(b);
    for (int k = 0; k < 25; ++k) {
      const Packet p = random_packet(rng);
      if (!a.matches(p)) continue;
      size_t covers = (inter && inter->matches(p)) ? 1 : 0;
      for (const auto& piece : pieces) covers += piece.matches(p) ? 1 : 0;
      EXPECT_EQ(covers, 1u) << "subtract+intersect must partition a";
    }
  }
}

TEST_P(FlowspaceLaws, HashAgreesWithEquality) {
  Rng rng(GetParam() + 4);
  for (int i = 0; i < 300; ++i) {
    const TernaryMatch a = random_match(rng);
    TernaryMatch b = a;
    EXPECT_EQ(a.hash(), b.hash());
    // A canonicalization alias must also collide.
    const auto& ft = a.field(FieldId::kDstIp);
    b.set_ternary(FieldId::kDstIp, ft.value | ~ft.mask, ft.mask);  // junk bits
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
  }
}

TEST_P(FlowspaceLaws, ActionUnionIsACommutativeIdempotentMonoid) {
  Rng rng(GetParam() + 5);
  for (int i = 0; i < 200; ++i) {
    const ActionList a = testutil::random_actions(rng);
    const ActionList b = testutil::random_actions(rng);
    const ActionList c = testutil::random_actions(rng);
    EXPECT_EQ(ActionList::parallel_union(a, b), ActionList::parallel_union(b, a));
    EXPECT_EQ(ActionList::parallel_union(a, ActionList::parallel_union(b, c)),
              ActionList::parallel_union(ActionList::parallel_union(a, b), c));
    EXPECT_EQ(ActionList::parallel_union(a, a), a);
    EXPECT_EQ(ActionList::parallel_union(a, ActionList{}), a);
  }
}

TEST_P(FlowspaceLaws, SequentialMergeHasIdentityAndComposesRewrites) {
  Rng rng(GetParam() + 6);
  for (int i = 0; i < 200; ++i) {
    // Identity (empty stage) on both sides.
    const ActionList a = testutil::random_actions(rng);
    EXPECT_EQ(ActionList::sequential_merge(ActionList{}, a), a);

    // Rewrite composition agrees pointwise with staged application.
    std::vector<Action> mods1, mods2;
    if (rng.next_bool(0.7)) {
      mods1.push_back(Action::set_field(FieldId::kDstIp, rng.next_u32()));
    }
    if (rng.next_bool(0.7)) {
      mods2.push_back(Action::set_field(
          rng.next_bool(0.5) ? FieldId::kDstIp : FieldId::kDstPort,
          rng.next_below(65536)));
    }
    const ActionList first{ActionList(std::move(mods1))};
    const ActionList second{ActionList(std::move(mods2))};
    const ActionList merged = ActionList::sequential_merge(first, second);
    for (int k = 0; k < 10; ++k) {
      const Packet p = random_packet(rng);
      const Packet staged = second.apply_rewrites(first.apply_rewrites(p));
      const Packet direct = merged.apply_rewrites(p);
      EXPECT_EQ(staged.fields, direct.fields);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowspaceLaws, ::testing::Values(11, 22, 33),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ruletris
