// Crash-recovery soak (registered as the `recovery_soak_smoke` ctest):
//
// Part A drives a firmware crash at EVERY injection point of a randomized
// churn workload, one full replay per point. After each torn transaction the
// journal recovery must leave the device auditor-clean, and the finished
// replay must land on a TCAM bit-identical to the never-crashed reference —
// rollback followed by a deterministic re-apply and roll-forward both
// converge to the same layout, so packet-level semantics are preserved
// through any crash.
//
// Part B runs the full asynchronous fleet under crash + corruption chaos
// (FaultSpec::crashy-style) and requires convergence plus a bit-identical
// report across runs and thread counts — crash scheduling, NACK
// retransmits and recovery timing are all deterministic virtual time.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "classbench/generator.h"
#include "compiler/policy_spec.h"
#include "flowspace/rule.h"
#include "runtime/config.h"
#include "runtime/controller.h"
#include "runtime/workload.h"
#include "switchsim/switch.h"
#include "tcam/apply_journal.h"
#include "tcam/auditor.h"
#include "test_util.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using compiler::PolicySpec;
using flowspace::FlowTable;
using flowspace::Packet;
using flowspace::Rule;
using runtime::ChurnSpec;
using runtime::CompiledWorkload;
using runtime::compile_churn_workload;
using runtime::Controller;
using runtime::FaultSpec;
using runtime::RuntimeConfig;
using runtime::RuntimeReport;
using switchsim::FirmwareMode;
using switchsim::SimulatedSwitch;
using tcam::ApplyJournal;
using tcam::AuditReport;
using tcam::audit_state;
using tcam::CrashError;
using tcam::DagScheduler;
using util::Rng;

CompiledWorkload small_churn(uint64_t seed, size_t updates) {
  Rng rng(seed);
  std::map<std::string, FlowTable> tables;
  tables.emplace("mon", FlowTable{classbench::generate_monitor(12, rng)});
  tables.emplace("rtr", FlowTable{classbench::generate_router(10, rng)});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("mon"), PolicySpec::leaf("rtr"));
  ChurnSpec churn;
  churn.leaf = "mon";
  churn.updates = updates;
  churn.seed = seed * 1000 + 17;
  return compile_churn_workload(spec, tables, churn);
}

TEST(RecoverySoak, CrashAtEveryInjectionPointRecoversBitIdentical) {
  const CompiledWorkload wl = small_churn(29, 15);
  const size_t capacity = wl.suggested_capacity();

  // Reference run: journal attached, hook counts every injection point but
  // never fires. The layout it produces is the crash-free ground truth.
  SimulatedSwitch ref(FirmwareMode::kDag, capacity);
  ApplyJournal ref_journal;
  ref.dag_firmware().set_journal(&ref_journal);
  size_t total_points = 0;
  ref.dag_firmware().set_crash_hook([&total_points] {
    ++total_points;
    return false;
  });
  for (const proto::MessageBatch& batch : wl.epochs) {
    ASSERT_TRUE(ref.apply(batch).ok);
  }
  const std::string ref_layout = ref.tcam().to_string();
  ASSERT_GT(total_points, wl.epochs.size());  // at least one op per epoch

  std::vector<Packet> probes;
  Rng packet_rng(91);
  for (int i = 0; i < 64; ++i) probes.push_back(testutil::random_packet(packet_rng));

  size_t rollbacks = 0;
  size_t roll_forwards = 0;
  for (size_t k = 1; k <= total_points; ++k) {
    SimulatedSwitch sw(FirmwareMode::kDag, capacity);
    ApplyJournal journal;
    DagScheduler& dag = sw.dag_firmware();
    dag.set_journal(&journal);
    size_t calls = 0;
    dag.set_crash_hook([&calls, k] { return ++calls == k; });

    size_t crashes = 0;
    for (size_t e = 0; e < wl.epochs.size();) {
      try {
        ASSERT_TRUE(sw.apply(wl.epochs[e]).ok) << "point " << k << " epoch " << e;
      } catch (const CrashError&) {
        ++crashes;
        const DagScheduler::RecoveryResult r = dag.recover();
        const AuditReport audit = audit_state(sw.tcam(), dag.graph());
        ASSERT_TRUE(audit.clean())
            << "point " << k << " epoch " << e << "\n" << audit.to_string();
        ASSERT_TRUE(dag.layout_valid()) << "point " << k;
        if (r.outcome == DagScheduler::RecoveryResult::Outcome::kRolledForward) {
          ++roll_forwards;
          ++e;  // the sealed transaction committed: the epoch is applied
        } else {
          ++rollbacks;  // pre-epoch state restored: re-apply the same epoch
        }
        continue;
      }
      ++e;
    }
    ASSERT_EQ(crashes, 1u) << "point " << k;  // the hook fires exactly once

    // The recovered-and-replayed device is bit-identical to the reference,
    // so every packet classifies identically.
    ASSERT_EQ(sw.tcam().to_string(), ref_layout) << "point " << k;
    const AuditReport final_audit =
        audit_state(sw.tcam(), dag.graph(), wl.final_rules);
    ASSERT_TRUE(final_audit.clean()) << "point " << k << "\n"
                                     << final_audit.to_string();
    for (const Packet& p : probes) {
      const Rule* a = ref.tcam().lookup(p);
      const Rule* b = sw.tcam().lookup(p);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        ASSERT_EQ(a->id, b->id);
      }
    }
  }
  // Both recovery modes were actually exercised: torn chains rolled back,
  // seal->commit gaps rolled forward (one gap per epoch).
  EXPECT_GT(rollbacks, 0u);
  EXPECT_EQ(roll_forwards, wl.epochs.size());
}

RuntimeReport run_crashy(const CompiledWorkload& wl, uint64_t fault_seed,
                         size_t threads) {
  RuntimeConfig cfg;
  cfg.n_switches = 6;
  cfg.knobs.window = 4;
  cfg.n_threads = threads;
  cfg.knobs.faults = FaultSpec::crashy();
  cfg.fault_seed = fault_seed;
  Controller controller(cfg);
  return controller.run(wl.epochs, wl.final_rules);
}

void expect_identical(const RuntimeReport& a, const RuntimeReport& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  EXPECT_EQ(a.data_frames_sent, b.data_frames_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.resync_replays, b.resync_replays);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.stale_resyncs, b.stale_resyncs);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.nacks, b.nacks);
  EXPECT_EQ(a.nack_retransmits, b.nack_retransmits);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.roll_forwards, b.roll_forwards);
  EXPECT_EQ(a.recovered_writes, b.recovered_writes);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_TRUE(a.ack_ms == b.ack_ms);
  EXPECT_TRUE(a.channel_ms == b.channel_ms);
  EXPECT_TRUE(a.tcam_ms == b.tcam_ms);
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_TRUE(a.sessions[i].wire == b.sessions[i].wire) << "session " << i;
    EXPECT_EQ(a.sessions[i].crashes, b.sessions[i].crashes) << "session " << i;
    EXPECT_EQ(a.sessions[i].nacks, b.sessions[i].nacks) << "session " << i;
    EXPECT_EQ(a.sessions[i].makespan_ms, b.sessions[i].makespan_ms)
        << "session " << i;
  }
}

TEST(RecoverySoak, CrashyFleetConvergesAndIsBitIdenticalAcrossThreads) {
  const CompiledWorkload wl = small_churn(31, 40);
  const RuntimeReport serial = run_crashy(wl, 11, 1);

  EXPECT_TRUE(serial.all_converged);
  EXPECT_EQ(serial.apply_failures, 0u);
  // The crash and corruption machinery actually fired somewhere in the
  // fleet, and convergence survived it.
  EXPECT_GT(serial.crashes, 0u);
  EXPECT_GT(serial.nacks, 0u);
  EXPECT_GT(serial.nack_retransmits, 0u);
  EXPECT_GT(serial.recovered_writes + serial.roll_forwards, 0u);

  for (size_t threads : {2ul, 6ul}) {
    expect_identical(serial, run_crashy(wl, 11, threads));
  }
  expect_identical(serial, run_crashy(wl, 11, 6));  // fresh run, same threads
}

}  // namespace
}  // namespace ruletris
