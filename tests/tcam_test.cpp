// Tcam device model and the Fenwick occupancy index.
#include <gtest/gtest.h>

#include "tcam/occupancy.h"
#include "tcam/tcam.h"
#include "test_util.h"

namespace ruletris {
namespace {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::TernaryMatch;
using tcam::OccupancyIndex;
using tcam::Tcam;
using util::Rng;

Rule rule_with_port(uint32_t port, uint32_t out_port) {
  TernaryMatch m;
  m.set_exact(FieldId::kDstPort, port);
  return Rule::make(m, ActionList{Action::forward(out_port)}, 0);
}

TEST(Tcam, WriteMoveEraseLifecycle) {
  Tcam tcam(8);
  Rule r = rule_with_port(80, 1);
  tcam.write(3, r);
  EXPECT_TRUE(tcam.contains(r.id));
  EXPECT_EQ(tcam.address_of(r.id), 3u);
  EXPECT_EQ(tcam.stats().entry_writes, 1u);

  tcam.move(3, 6);
  EXPECT_EQ(tcam.address_of(r.id), 6u);
  EXPECT_TRUE(tcam.is_free(3));
  EXPECT_EQ(tcam.stats().entry_writes, 2u);
  EXPECT_EQ(tcam.stats().moves, 1u);

  tcam.erase(6);
  EXPECT_FALSE(tcam.contains(r.id));
  EXPECT_EQ(tcam.stats().erases, 1u);
  // Deletes are mask invalidations: no entry write.
  EXPECT_EQ(tcam.stats().entry_writes, 2u);
}

TEST(Tcam, HighestAddressWins) {
  Tcam tcam(4);
  Rule low = rule_with_port(80, 1);
  Rule high = rule_with_port(80, 2);
  tcam.write(0, low);
  tcam.write(3, high);
  Packet p;
  p.set(FieldId::kDstPort, 80);
  ASSERT_NE(tcam.lookup(p), nullptr);
  EXPECT_EQ(tcam.lookup(p)->id, high.id);
}

TEST(Tcam, LookupMiss) {
  Tcam tcam(4);
  tcam.write(0, rule_with_port(80, 1));
  Packet p;
  p.set(FieldId::kDstPort, 81);
  EXPECT_EQ(tcam.lookup(p), nullptr);
}

TEST(Tcam, InvalidOperationsThrow) {
  Tcam tcam(4);
  Rule r = rule_with_port(80, 1);
  tcam.write(1, r);
  EXPECT_THROW(tcam.write(1, rule_with_port(81, 1)), std::logic_error);
  EXPECT_THROW(tcam.write(2, r), std::logic_error);  // duplicate id
  EXPECT_THROW(tcam.move(0, 2), std::logic_error);   // source free
  EXPECT_THROW(tcam.move(1, 1), std::logic_error);   // target occupied
  EXPECT_THROW(tcam.at(9), std::out_of_range);
  EXPECT_THROW((Tcam{0}), std::invalid_argument);
}

TEST(Tcam, UpdateTimeModel) {
  Tcam tcam(8);
  tcam.write(0, rule_with_port(1, 1));
  tcam.move(0, 1);
  EXPECT_DOUBLE_EQ(tcam.stats().update_time_ms(), 2 * tcam::kEntryWriteMs);
}

TEST(Tcam, ModifyActionsInPlace) {
  Tcam tcam(4);
  Rule r = rule_with_port(80, 1);
  tcam.write(2, r);
  tcam.modify_actions(r.id, ActionList{Action::drop()});
  EXPECT_TRUE(tcam.rule(r.id).actions.contains(flowspace::ActionType::kDrop));
  EXPECT_EQ(tcam.stats().entry_writes, 2u);
  EXPECT_EQ(tcam.stats().moves, 0u);
}

TEST(Tcam, EntriesHighToLow) {
  Tcam tcam(4);
  Rule a = rule_with_port(1, 1);
  Rule b = rule_with_port(2, 2);
  tcam.write(0, a);
  tcam.write(3, b);
  auto entries = tcam.entries_high_to_low();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, b.id);
  EXPECT_EQ(entries[1].id, a.id);
}

// --- occupancy index ---------------------------------------------------------

TEST(OccupancyIndex, CountsAndRanks) {
  OccupancyIndex occ(10);
  occ.set_occupied(2, true);
  occ.set_occupied(5, true);
  occ.set_occupied(9, true);
  EXPECT_EQ(occ.occupied_count(), 3u);
  EXPECT_EQ(occ.occupied_below(5), 1u);
  EXPECT_EQ(occ.occupied_in(2, 5), 2u);
  EXPECT_EQ(*occ.kth_occupied(0), 2u);
  EXPECT_EQ(*occ.kth_occupied(1), 5u);
  EXPECT_EQ(*occ.kth_occupied(2), 9u);
  EXPECT_FALSE(occ.kth_occupied(3).has_value());
}

TEST(OccupancyIndex, NearestFreeQueries) {
  OccupancyIndex occ(8);
  for (size_t a : {1u, 2u, 3u, 6u}) occ.set_occupied(a, true);
  EXPECT_EQ(*occ.nearest_free_at_or_above(1), 4u);
  EXPECT_EQ(*occ.nearest_free_at_or_above(4), 4u);
  EXPECT_EQ(*occ.nearest_free_at_or_above(6), 7u);
  EXPECT_EQ(*occ.nearest_free_at_or_below(6), 5u);
  EXPECT_EQ(*occ.nearest_free_at_or_below(3), 0u);
  occ.set_occupied(0, true);
  EXPECT_FALSE(occ.nearest_free_at_or_below(3).has_value());
}

TEST(OccupancyIndex, RandomizedAgainstLinearScan) {
  Rng rng(77);
  OccupancyIndex occ(64);
  std::vector<bool> shadow(64, false);
  for (int step = 0; step < 2000; ++step) {
    const size_t addr = rng.next_below(64);
    const bool value = rng.next_bool(0.5);
    occ.set_occupied(addr, value);
    shadow[addr] = value;

    const size_t probe = rng.next_below(64);
    // nearest free above
    std::optional<size_t> expect_above;
    for (size_t a = probe; a < 64; ++a) {
      if (!shadow[a]) {
        expect_above = a;
        break;
      }
    }
    EXPECT_EQ(occ.nearest_free_at_or_above(probe), expect_above);
    // nearest free below
    std::optional<size_t> expect_below;
    for (size_t a = probe + 1; a-- > 0;) {
      if (!shadow[a]) {
        expect_below = a;
        break;
      }
    }
    EXPECT_EQ(occ.nearest_free_at_or_below(probe), expect_below);
    // counts
    size_t count = 0;
    for (size_t a = 0; a < probe; ++a) count += shadow[a] ? 1 : 0;
    EXPECT_EQ(occ.occupied_below(probe), count);
  }
}

}  // namespace
}  // namespace ruletris
