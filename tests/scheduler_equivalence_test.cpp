// Cached-caps/flat-arena search ≡ legacy search (PR 4 tentpole contract).
//
// The CapIndex-backed scheduler must be a pure performance change: for any
// operation stream, both search modes produce identical TCAM layouts and
// identical last_chain_moves(). These tests drive paired schedulers through
// random DAG streams, batched BackendUpdates (the incremental cap-hook
// path), the adversarial default-rule star (the O(n)-degree hotspot), and
// direct graph() mutation (the dirty-rebuild path). Plus a property test for
// the Fenwick-descent kth_free behind the free-slot queries.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dag/builder.h"
#include "tcam/backend_update.h"
#include "tcam/dag_scheduler.h"
#include "tcam/occupancy.h"
#include "test_util.h"

namespace ruletris {
namespace {

using dag::DependencyGraph;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using tcam::BackendUpdate;
using tcam::DagScheduler;
using tcam::OccupancyIndex;
using tcam::Tcam;
using util::Rng;

Rule make_rule(uint32_t tag) {
  TernaryMatch m;
  m.set_exact(FieldId::kDstPort, tag);
  return Rule::make(m, ActionList{Action::forward(1)}, 0);
}

/// A cached-mode and a legacy-mode scheduler over twin TCAMs; every
/// operation is mirrored to both and the results compared.
struct SchedulerPair {
  Tcam tcam_cached;
  Tcam tcam_legacy;
  DagScheduler cached;
  DagScheduler legacy;

  explicit SchedulerPair(size_t capacity)
      : tcam_cached(capacity),
        tcam_legacy(capacity),
        cached(tcam_cached, DagScheduler::Placement::kBalanced,
               DagScheduler::SearchMode::kCached),
        legacy(tcam_legacy, DagScheduler::Placement::kBalanced,
               DagScheduler::SearchMode::kLegacy) {}

  void expect_identical(const char* where) {
    ASSERT_EQ(cached.last_chain_moves(), legacy.last_chain_moves()) << where;
    for (size_t a = 0; a < tcam_cached.capacity(); ++a) {
      const std::optional<RuleId> c = tcam_cached.at(a);
      const std::optional<RuleId> l = tcam_legacy.at(a);
      ASSERT_EQ(c.has_value(), l.has_value()) << where << " addr " << a;
      if (c) ASSERT_EQ(*c, *l) << where << " addr " << a;
    }
  }

  void insert_both(const Rule& r) {
    const bool a = cached.insert(r);
    const bool b = legacy.insert(r);
    ASSERT_EQ(a, b);
    expect_identical("insert");
  }

  void apply_both(const BackendUpdate& u) {
    const bool a = cached.apply(u);
    const bool b = legacy.apply(u);
    ASSERT_EQ(a, b);
    expect_identical("apply");
  }

  void remove_both(RuleId id) {
    cached.remove(id);
    legacy.remove(id);
    expect_identical("remove");
  }

  void evict_both(RuleId id) {
    ASSERT_EQ(cached.evict(id), legacy.evict(id));
    expect_identical("evict");
  }
};

/// Random minimum DAGs installed rule by rule, then churned with removes and
/// evict+reinsert cycles: layouts and chain lengths must agree at every step.
TEST(SchedulerEquivalence, RandomDagStreamsProduceIdenticalLayouts) {
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 12 + static_cast<int>(rng.next_below(12));
    std::vector<Rule> rules;
    for (int i = 0; i < n; ++i) rules.push_back(testutil::random_rule(rng, n - i));
    FlowTable table{rules};
    const DependencyGraph min_dag = dag::build_min_dag(table);

    SchedulerPair pair(static_cast<size_t>(n + n / 8 + 2));
    pair.cached.graph() = min_dag;
    pair.legacy.graph() = min_dag;
    for (RuleId id : min_dag.topo_order_high_to_low()) {
      pair.insert_both(table.rule(id));
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_TRUE(pair.cached.layout_valid());
    ASSERT_TRUE(pair.legacy.layout_valid());

    std::vector<RuleId> live;
    for (const Rule& r : table.rules()) live.push_back(r.id);
    for (int op = 0; op < 40 && !live.empty(); ++op) {
      const size_t pick = rng.next_below(live.size());
      const RuleId victim = live[pick];
      if (rng.next_bool(0.5)) {
        // Evict + reinsert: the vertex and edges survive, bounds come from
        // the retained caps on the cached side.
        pair.evict_both(victim);
        pair.insert_both(table.rule(victim));
      } else {
        pair.remove_both(victim);
        live[pick] = live.back();
        live.pop_back();
      }
      if (::testing::Test::HasFatalFailure()) return;
      ASSERT_TRUE(pair.cached.layout_valid());
    }
  }
}

/// BackendUpdate batches with DAG deltas drive the incremental cap hooks
/// (on_add_edge / on_remove_edge / on_write / on_erase) without any rebuild.
TEST(SchedulerEquivalence, BatchedApplyWithDagDeltasStaysEquivalent) {
  Rng rng(43);
  SchedulerPair pair(48);

  // A default that depends on every later rule (fat out-degree), installed
  // first via a batch.
  const Rule def = make_rule(1);
  BackendUpdate initial;
  initial.added.push_back(def);
  initial.dag.added_vertices.push_back(def.id);
  pair.apply_both(initial);
  if (::testing::Test::HasFatalFailure()) return;

  std::vector<Rule> live;
  uint32_t next_tag = 100;
  for (int op = 0; op < 120; ++op) {
    BackendUpdate update;
    if (live.size() > 30 || (!live.empty() && rng.next_bool(0.3))) {
      const size_t pick = rng.next_below(live.size());
      update.removed.push_back(live[pick].id);
      live[pick] = live.back();
      live.pop_back();
    } else {
      Rule fresh = make_rule(next_tag++);
      update.dag.added_vertices.push_back(fresh.id);
      // The default depends on every rule; the fresh rule depends on up to
      // two random existing rules (edges always point at older rules, so
      // the graph stays acyclic).
      update.dag.added_edges.push_back({def.id, fresh.id});
      for (int e = 0; e < 2 && !live.empty(); ++e) {
        const Rule& older = live[rng.next_below(live.size())];
        update.dag.added_edges.push_back({fresh.id, older.id});
      }
      update.added.push_back(fresh);
      live.push_back(fresh);
    }
    pair.apply_both(update);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(pair.cached.layout_valid());
    ASSERT_TRUE(pair.legacy.layout_valid());
  }
}

/// The adversarial hotspot at test scale: one default rule with out-degree
/// equal to the table, churned by evicting and reinserting both the default
/// itself and its dependents at high occupancy.
TEST(SchedulerEquivalence, DefaultRuleStarChurnEquivalence) {
  Rng rng(47);
  const size_t leaves = 120;
  SchedulerPair pair(140);

  const Rule def = make_rule(1);
  std::vector<Rule> leaf_rules;
  DependencyGraph g;
  for (size_t i = 0; i < leaves; ++i) {
    leaf_rules.push_back(make_rule(static_cast<uint32_t>(100 + i)));
    g.add_edge(def.id, leaf_rules.back().id);
  }
  pair.cached.graph() = g;
  pair.legacy.graph() = g;
  for (const Rule& leaf : leaf_rules) {
    pair.insert_both(leaf);
    if (::testing::Test::HasFatalFailure()) return;
  }
  pair.insert_both(def);
  if (::testing::Test::HasFatalFailure()) return;

  uint32_t next_tag = 10'000;
  for (int op = 0; op < 200; ++op) {
    const double what = rng.next_double();
    if (what < 0.15) {
      // The O(n)-degree rule itself: evict + reinsert must rescan nothing
      // on the cached side and still land identically.
      pair.evict_both(def.id);
      pair.insert_both(def);
    } else if (what < 0.6) {
      const size_t pick = rng.next_below(leaf_rules.size());
      pair.evict_both(leaf_rules[pick].id);
      pair.insert_both(leaf_rules[pick]);
    } else {
      // Replace a leaf through the batched path: DAG delta + insert.
      const size_t pick = rng.next_below(leaf_rules.size());
      Rule fresh = make_rule(next_tag++);
      BackendUpdate update;
      update.removed.push_back(leaf_rules[pick].id);
      update.dag.added_vertices.push_back(fresh.id);
      update.dag.added_edges.push_back({def.id, fresh.id});
      update.added.push_back(fresh);
      leaf_rules[pick] = fresh;
      pair.apply_both(update);
    }
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(pair.cached.layout_valid());
  }
  ASSERT_TRUE(pair.legacy.layout_valid());
}

/// Direct graph() mutation invalidates the cap cache; the next insert must
/// rebuild it exactly — layouts stay identical to a legacy scheduler that
/// recomputes from the graph every time.
TEST(SchedulerEquivalence, ExternalGraphMutationTriggersExactRebuild) {
  Rng rng(53);
  SchedulerPair pair(32);
  std::vector<Rule> live;
  uint32_t next_tag = 1;
  for (int op = 0; op < 60; ++op) {
    Rule fresh = make_rule(next_tag++);
    // Mutate through the public graph() accessor, like the adapters and
    // stress tests do.
    pair.cached.graph().add_vertex(fresh.id);
    pair.legacy.graph().add_vertex(fresh.id);
    for (int e = 0; e < 2 && !live.empty(); ++e) {
      const Rule& older = live[rng.next_below(live.size())];
      pair.cached.graph().add_edge(fresh.id, older.id);
      pair.legacy.graph().add_edge(fresh.id, older.id);
    }
    pair.insert_both(fresh);
    if (::testing::Test::HasFatalFailure()) return;
    live.push_back(fresh);
    if (live.size() > 24) {
      const size_t pick = rng.next_below(live.size());
      pair.remove_both(live[pick].id);
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_TRUE(pair.cached.layout_valid());
  }
}

/// Fenwick-descent kth_free: the nearest-free queries must agree with a
/// linear scan over every address, under random occupancy churn and a
/// non-power-of-two capacity.
TEST(OccupancyIndexFenwick, NearestFreeMatchesLinearScan) {
  Rng rng(59);
  const size_t cap = 97;
  OccupancyIndex index(cap);
  std::vector<bool> reference(cap, false);

  for (int round = 0; round < 40; ++round) {
    for (int flips = 0; flips < 13; ++flips) {
      const size_t addr = rng.next_below(cap);
      const bool value = rng.next_bool(0.6);
      index.set_occupied(addr, value);
      reference[addr] = value;
    }
    for (size_t from = 0; from < cap; ++from) {
      std::optional<size_t> want_above;
      for (size_t a = from; a < cap; ++a) {
        if (!reference[a]) {
          want_above = a;
          break;
        }
      }
      std::optional<size_t> want_below;
      for (size_t a = from + 1; a-- > 0;) {
        if (!reference[a]) {
          want_below = a;
          break;
        }
      }
      ASSERT_EQ(index.nearest_free_at_or_above(from), want_above)
          << "round " << round << " from " << from;
      ASSERT_EQ(index.nearest_free_at_or_below(from), want_below)
          << "round " << round << " from " << from;
    }
  }
}

}  // namespace
}  // namespace ruletris
