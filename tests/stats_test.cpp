// util::stats: mergeable histogram + sample merging.
//
// The runtime keeps one Histogram per switch session (no locks on the hot
// path) and merges them at report time, so merging must be exact: a merged
// histogram must be indistinguishable from one fed every sample directly.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace ruletris {
namespace {

TEST(Samples, MergeAppendsAllValues) {
  util::Samples a, b;
  a.add(1.0);
  a.add(3.0);
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.median(), 2.0);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(Histogram, CountSumMinMaxAreExact) {
  util::Histogram h;
  h.add(0.25);
  h.add(4.0);
  h.add(17.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 21.75);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 17.5);
  EXPECT_DOUBLE_EQ(h.mean(), 7.25);
}

TEST(Histogram, EmptyThrowsAndSummarizesAsNA) {
  util::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW(h.percentile(50.0), std::logic_error);
  EXPECT_THROW(h.min(), std::logic_error);
  EXPECT_EQ(h.summary("ms"), "n/a");
}

TEST(Histogram, PercentileTracksExactWithinBucketWidth) {
  util::Rng rng(7);
  util::Samples exact;
  util::Histogram h;
  for (int i = 0; i < 20000; ++i) {
    // Latency-shaped: a few orders of magnitude of spread.
    const double v = 0.05 + 40.0 * rng.next_double() * rng.next_double();
    exact.add(v);
    h.add(v);
  }
  for (double q : {10.0, 50.0, 90.0, 99.0}) {
    const double e = exact.percentile(q);
    // One geometric bucket is a 10^(1/16) ≈ 1.155 ratio; allow one bucket
    // of slack either way.
    EXPECT_LT(h.percentile(q), e * 1.16) << "q=" << q;
    EXPECT_GT(h.percentile(q), e / 1.16) << "q=" << q;
  }
}

TEST(Histogram, PercentileClampedToObservedRange) {
  util::Histogram h;
  for (int i = 0; i < 100; ++i) h.add(3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.0);
}

TEST(Histogram, OutOfRangeValuesLandInEdgeBuckets) {
  util::Histogram h;
  h.add(0.0);     // underflow (and zero) bucket
  h.add(-5.0);    // negatives too
  h.add(1e12);    // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  // Percentiles stay inside the observed envelope.
  EXPECT_GE(h.percentile(50.0), -5.0);
  EXPECT_LE(h.percentile(99.0), 1e12);
}

TEST(Histogram, MergeEqualsSingleAccumulator) {
  util::Rng rng(99);
  util::Histogram whole;
  std::vector<util::Histogram> parts(8);
  for (int i = 0; i < 50000; ++i) {
    const double v = 1e-4 + 1e4 * rng.next_double() * rng.next_double();
    whole.add(v);
    parts[static_cast<size_t>(i) % parts.size()].add(v);
  }
  util::Histogram merged;
  for (const util::Histogram& p : parts) merged.merge(p);
  // Bucket contents, count and extrema merge exactly; every percentile is
  // therefore identical. The sum matches up to floating-point association
  // (partial sums were accumulated in a different order).
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * whole.sum());
  for (double q : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.percentile(q), whole.percentile(q)) << "q=" << q;
  }
}

TEST(Histogram, SameOrderMergeIsBitIdentical) {
  // The runtime's determinism checks compare merged histograms with
  // operator==: as long as two runs merge the same per-session histograms
  // in the same order, the result is bit-identical.
  util::Rng rng(7);
  std::vector<util::Histogram> parts(4);
  for (int i = 0; i < 1000; ++i) {
    parts[static_cast<size_t>(i) % parts.size()].add(rng.next_double() * 50.0);
  }
  util::Histogram a, b;
  for (const util::Histogram& p : parts) a.merge(p);
  for (const util::Histogram& p : parts) b.merge(p);
  EXPECT_TRUE(a == b);
}

TEST(Histogram, MergeIntoEmptyAndWithEmpty) {
  util::Histogram a, b, empty;
  a.add(1.0);
  b.merge(a);      // into empty
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  b.merge(empty);  // with empty: no-op
  EXPECT_EQ(b.count(), 1u);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace ruletris
