// Compile-strategy equivalence for ComposedNode's full compile.
//
// full_rebuild has three interchangeable execution strategies — serial
// index-pruned (default), the legacy O(n^2) stitch ablation, and the
// thread-pool sharded path — plus the incremental path that reaches the same
// state one child update at a time. All of them must agree on the
// id-independent CompileSnapshot: member entries by provenance, key-vertex
// representatives, and the visible minimum-DAG edge set. (Member-graph edges
// are deliberately outside the snapshot: the incremental stitcher may retain
// extra, still-valid constraint edges.)
//
// Also holds the collision smoke test for util::hash_pair, which backs the
// PairKey/EdgeKey hashes: rule ids arrive in consecutive runs from the
// global counter, exactly the structured grids the old multiply-add
// combiners degraded on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "compiler/composed_node.h"
#include "compiler/leaf.h"
#include "test_util.h"
#include "util/hash.h"

namespace ruletris {
namespace {

using compiler::CompileOptions;
using compiler::CompileSnapshot;
using compiler::ComposedNode;
using compiler::LeafNode;
using compiler::OpKind;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using util::Rng;

constexpr OpKind kAllOps[] = {OpKind::kParallel, OpKind::kSequential,
                              OpKind::kPriority};

/// Like testutil::random_actions, but sometimes adds a header rewrite so the
/// sequential operator's match-rewrite machinery is actually exercised.
ActionList random_actions(Rng& rng) {
  if (rng.next_bool(0.3)) {
    return ActionList{Action::set_field(FieldId::kDstIp,
                                        static_cast<uint32_t>(rng.next_below(4)) << 30),
                      Action::forward(1 + static_cast<uint32_t>(rng.next_below(3)))};
  }
  return testutil::random_actions(rng);
}

std::vector<Rule> random_table_rules(Rng& rng, size_t n) {
  std::vector<Rule> rules;
  rules.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rules.push_back(Rule::make(testutil::random_match(rng), random_actions(rng),
                               static_cast<int32_t>(n - i)));
  }
  return rules;
}

ComposedNode make_node(OpKind op, const std::vector<Rule>& t1,
                       const std::vector<Rule>& t2, const CompileOptions& opts) {
  return ComposedNode{op, std::make_unique<LeafNode>(FlowTable{t1}),
                      std::make_unique<LeafNode>(FlowTable{t2}), opts};
}

/// RAII guard for the process-wide default compile options (the nested-tree
/// tests build whole trees under one strategy via the defaulted ctor).
class DefaultOptionsGuard {
 public:
  explicit DefaultOptionsGuard(const CompileOptions& opts)
      : saved_(compiler::default_compile_options()) {
    compiler::set_default_compile_options(opts);
  }
  ~DefaultOptionsGuard() { compiler::set_default_compile_options(saved_); }

 private:
  CompileOptions saved_;
};

class CompileStrategies : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompileStrategies, SerialLegacyAndParallelSnapshotsAgree) {
  Rng rng(GetParam());
  for (const OpKind op : kAllOps) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto t1 = random_table_rules(rng, 8 + rng.next_below(16));
      const auto t2 = random_table_rules(rng, 8 + rng.next_below(16));

      const CompileSnapshot serial =
          make_node(op, t1, t2, CompileOptions{}).snapshot();

      CompileOptions legacy;
      legacy.legacy_stitch = true;
      EXPECT_EQ(make_node(op, t1, t2, legacy).snapshot(), serial)
          << compiler::op_name(op) << " legacy stitch diverged";

      for (const size_t threads : {2ul, 4ul}) {
        CompileOptions par;
        par.n_threads = threads;
        par.parallel_cutoff = 0;  // force the sharded path on tiny tables
        EXPECT_EQ(make_node(op, t1, t2, par).snapshot(), serial)
            << compiler::op_name(op) << " parallel diverged, threads=" << threads;

        par.legacy_stitch = true;
        EXPECT_EQ(make_node(op, t1, t2, par).snapshot(), serial)
            << compiler::op_name(op) << " parallel legacy diverged";
      }
    }
  }
}

TEST_P(CompileStrategies, IncrementalStateMatchesFullRebuildSnapshot) {
  // Drive a node through random child inserts/removals, then recompile the
  // same node from scratch: entries, representatives, and the visible DAG
  // must land in the identical state (under every strategy).
  Rng rng(GetParam() ^ 0x1ac5);
  for (const OpKind op : kAllOps) {
    auto t1 = random_table_rules(rng, 5);
    auto t2 = random_table_rules(rng, 5);
    auto left = std::make_unique<LeafNode>(FlowTable{t1});
    auto right = std::make_unique<LeafNode>(FlowTable{t2});
    LeafNode* lp = left.get();
    LeafNode* rp = right.get();
    ComposedNode node{op, std::move(left), std::move(right), CompileOptions{}};

    std::vector<RuleId> live_l, live_r;
    for (const Rule& r : t1) live_l.push_back(r.id);
    for (const Rule& r : t2) live_r.push_back(r.id);

    for (int step = 0; step < 24; ++step) {
      const bool use_left = rng.next_bool(0.5);
      LeafNode* leaf = use_left ? lp : rp;
      auto& live = use_left ? live_l : live_r;
      if (!live.empty() && rng.next_bool(0.4)) {
        const size_t pick = rng.next_below(live.size());
        node.apply_child_update(use_left, leaf->remove(live[pick]));
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        Rule r = Rule::make(testutil::random_match(rng), random_actions(rng),
                            1 + static_cast<int32_t>(rng.next_below(30)));
        live.push_back(r.id);
        node.apply_child_update(use_left, leaf->insert(std::move(r)));
      }
    }

    const CompileSnapshot incremental = node.snapshot();
    node.full_rebuild();
    EXPECT_EQ(node.snapshot(), incremental)
        << compiler::op_name(op) << " serial rebuild diverged from incremental";

    CompileOptions par;
    par.n_threads = 4;
    par.parallel_cutoff = 0;
    node.set_compile_options(par);
    node.full_rebuild();
    EXPECT_EQ(node.snapshot(), incremental)
        << compiler::op_name(op) << " parallel rebuild diverged from incremental";

    CompileOptions legacy;
    legacy.legacy_stitch = true;
    node.set_compile_options(legacy);
    node.full_rebuild();
    EXPECT_EQ(node.snapshot(), incremental)
        << compiler::op_name(op) << " legacy rebuild diverged from incremental";
  }
}

TEST_P(CompileStrategies, NestedTwoLevelPoliciesAgreeAcrossStrategies) {
  // (a op1 b) op2 c — the inner composed node is itself a child, so the
  // outer compile consumes a composed visible table/DAG, not a leaf's.
  Rng rng(GetParam() ^ 0x2b1d);
  for (const OpKind op1 : kAllOps) {
    for (const OpKind op2 : kAllOps) {
      const auto ta = random_table_rules(rng, 6 + rng.next_below(6));
      const auto tb = random_table_rules(rng, 6 + rng.next_below(6));
      const auto tc = random_table_rules(rng, 6 + rng.next_below(6));

      auto build = [&](const CompileOptions& opts) {
        DefaultOptionsGuard guard(opts);
        auto inner = std::make_unique<ComposedNode>(
            op1, std::make_unique<LeafNode>(FlowTable{ta}),
            std::make_unique<LeafNode>(FlowTable{tb}));
        ComposedNode root{op2, std::move(inner),
                          std::make_unique<LeafNode>(FlowTable{tc})};
        // The inner node's entry ids come from the process-global counter and
        // differ per build, so the root's raw provenance snapshot is not
        // comparable across builds. Canonicalize each source id to its rank
        // in the child's visible order (deterministic given the same leaf
        // tables), keeping the snapshot comparison id-independent.
        const CompileSnapshot s = root.snapshot();
        auto ranks = [](const compiler::PolicyNode& n) {
          std::unordered_map<RuleId, size_t> m;
          const auto rules = n.visible_rules_in_order();
          for (size_t i = 0; i < rules.size(); ++i) m[rules[i].id] = i + 1;
          return m;
        };
        const auto lrank = ranks(root.left());
        const auto rrank = ranks(root.right());
        auto canon = [&](const CompileSnapshot::Prov& p) {
          return std::pair<size_t, size_t>{p.first ? lrank.at(p.first) : 0,
                                           p.second ? rrank.at(p.second) : 0};
        };
        std::vector<std::tuple<size_t, size_t, TernaryMatch, ActionList>> entries;
        for (const auto& [l, r, m, a] : s.entries) {
          const auto [cl, cr] = canon({l, r});
          entries.emplace_back(cl, cr, m, a);
        }
        std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
          if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
          return std::get<1>(a) < std::get<1>(b);
        });
        std::vector<std::pair<size_t, size_t>> reps;
        for (const auto& p : s.reps) reps.push_back(canon(p));
        std::sort(reps.begin(), reps.end());
        std::vector<std::pair<std::pair<size_t, size_t>, std::pair<size_t, size_t>>>
            edges;
        for (const auto& [u, v] : s.visible_edges) edges.emplace_back(canon(u), canon(v));
        std::sort(edges.begin(), edges.end());
        return std::make_tuple(entries, reps, edges);
      };

      const auto serial = build(CompileOptions{});
      CompileOptions par;
      par.n_threads = 4;
      par.parallel_cutoff = 0;
      EXPECT_EQ(build(par), serial) << compiler::op_name(op1) << " then "
                                    << compiler::op_name(op2) << " (parallel)";
      CompileOptions legacy;
      legacy.legacy_stitch = true;
      EXPECT_EQ(build(legacy), serial) << compiler::op_name(op1) << " then "
                                       << compiler::op_name(op2) << " (legacy)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompileStrategies,
                         ::testing::Values(1u, 0xbeefu, 0x5eedu));

TEST(PairHash, NoCollisionsOnConsecutiveIdGrids) {
  // Rule ids are handed out consecutively, so PairKeys form dense integer
  // grids. The old h(l)*C + h(r) combiner kept grid structure in the low
  // bits; the 128-bit mix must give distinct values and balanced buckets.
  constexpr uint64_t kBase = 1000;
  constexpr size_t kSide = 256;
  std::unordered_set<size_t> seen;
  seen.reserve(kSide * kSide);
  std::vector<size_t> buckets(4096, 0);
  for (uint64_t l = kBase; l < kBase + kSide; ++l) {
    for (uint64_t r = kBase; r < kBase + kSide; ++r) {
      const size_t h = util::hash_pair(l, r);
      seen.insert(h);
      ++buckets[h & 0xfff];
    }
  }
  EXPECT_EQ(seen.size(), kSide * kSide);  // no full-width collisions at all
  // Low bits drive unordered_map bucket choice: demand near-uniform spread
  // (expected 16 per bucket; 4x headroom).
  for (const size_t count : buckets) EXPECT_LE(count, 64u);
  // Ordered pairs are directional.
  EXPECT_NE(util::hash_pair(1, 2), util::hash_pair(2, 1));
}

}  // namespace
}  // namespace ruletris
