// util::ThreadPool / ChunkCursor contention tests. The sharded fleet
// dispatcher parks its work-stealing workers on this pool, so the pool's
// liveness and drain semantics under storms are tier-1. Labelled `parallel`
// so the TSAN tree (tools/check.sh) sweeps every interleaving class here.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace ruletris::util {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.run([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitStormRunsEveryJobExactlyOnce) {
  constexpr size_t kProducers = 4;
  constexpr size_t kJobsPerProducer = 500;
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  std::vector<std::atomic<int>> hits(kProducers * kJobsPerProducer);

  // Concurrent producers hammer run() while workers drain: exercises the
  // queue mutex, the wake path and the outstanding counter under load.
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t j = 0; j < kJobsPerProducer; ++j) {
        const size_t slot = p * kJobsPerProducer + j;
        pool.run([&, slot] {
          hits[slot].fetch_add(1);
          ran.fetch_add(1);
        });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();

  EXPECT_EQ(ran.load(), kProducers * kJobsPerProducer);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, JobsMayEnqueueJobs) {
  // wait_idle() must cover work enqueued *by* running jobs: outstanding_ is
  // bumped before the child could finish, so the drain can't terminate
  // early. The fleet dispatcher relies on this shape.
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    for (int i = 0; i < 3; ++i) pool.run([&spawn, depth] { spawn(depth - 1); });
  };
  pool.run([&] { spawn(4); });  // 3^4 leaves
  // Every child bumps outstanding_ before its parent retires, so a single
  // drain must observe the whole tree.
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), 81);
}

TEST(ThreadPoolTest, CatchInsideJobKeepsWorkersAlive) {
  // Pool contract: jobs must not throw. The supported pattern is catching
  // inside the job and reporting through the caller's channel — after a
  // storm of caught failures the pool must still run work.
  ThreadPool pool(2);
  std::atomic<int> failures{0};
  for (int i = 0; i < 64; ++i) {
    pool.run([&] {
      try {
        throw std::runtime_error("job-level failure");
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(failures.load(), 64);

  std::atomic<bool> alive{false};
  pool.run([&] { alive.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(alive.load());
}

TEST(ThreadPoolTest, EffectiveWorkersClampsToHardwareAndFloorsAtOne) {
  const size_t hw =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(effective_workers(0), 1u);
  EXPECT_EQ(effective_workers(1), 1u);
  EXPECT_EQ(effective_workers(hw), hw);
  EXPECT_EQ(effective_workers(hw + 17), hw);
  EXPECT_EQ(effective_workers(SIZE_MAX), hw);
}

TEST(ChunkCursorTest, ContendedClaimsPartitionTheRange) {
  constexpr size_t kN = 10000;
  ChunkCursor cursor(0, kN, 7);
  std::vector<std::atomic<int>> claimed(kN);
  ThreadPool pool(4);
  run_on_workers(pool, [&] {
    return [&] {
      size_t b, e;
      while (cursor.next(b, e)) {
        ASSERT_LT(b, e);
        ASSERT_LE(e, kN);
        for (size_t i = b; i < e; ++i) claimed[i].fetch_add(1);
      }
    };
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "index " << i;
  }
  size_t b, e;
  EXPECT_FALSE(cursor.next(b, e));
}

TEST(ChunkCursorTest, SuggestChunkBalancesAndFloors) {
  EXPECT_EQ(ChunkCursor::suggest_chunk(0, 4), 16u);    // floor
  EXPECT_EQ(ChunkCursor::suggest_chunk(100, 0), 16u);  // zero threads OK
  EXPECT_EQ(ChunkCursor::suggest_chunk(6400, 4), 200u);  // ~8 chunks/worker
}

TEST(ThreadPoolTest, RunOnWorkersRunsOneJobPerWorker) {
  ThreadPool pool(5);
  std::atomic<int> jobs{0};
  run_on_workers(pool, [&] {
    return [&] { jobs.fetch_add(1); };
  });
  EXPECT_EQ(jobs.load(), 5);
}

}  // namespace
}  // namespace ruletris::util
