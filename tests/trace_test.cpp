// Update-trace format: parse/serialize round trips and replay semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "classbench/trace.h"
#include "compiler/leaf.h"
#include "test_util.h"

namespace ruletris {
namespace {

using classbench::parse_trace;
using classbench::synthesize_churn_trace;
using classbench::TraceStep;
using classbench::UpdateTrace;
using classbench::write_trace;
using compiler::LeafNode;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using util::Rng;

TEST(Trace, ParseBasics) {
  std::istringstream in(
      "# header comment\n"
      "del -3\n"
      "add 40 @1.0.0.0/8 2.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF\n"
      "del 1\n");
  const UpdateTrace trace = parse_trace(in);
  ASSERT_EQ(trace.steps.size(), 3u);
  EXPECT_EQ(trace.steps[0].kind, TraceStep::Kind::kDelete);
  EXPECT_EQ(trace.steps[0].ref, -3);
  EXPECT_EQ(trace.steps[1].kind, TraceStep::Kind::kAdd);
  ASSERT_EQ(trace.steps[1].rules.size(), 1u);
  EXPECT_EQ(trace.steps[1].rules[0].priority, 40);
  EXPECT_EQ(trace.steps[2].ref, 1);
}

TEST(Trace, RangeExpandedAddReplaysAsGroup) {
  std::istringstream in("add 10 @0.0.0.0/0 0.0.0.0/0 0 : 65535 1024 : 65535 0x00/0x00\n");
  const UpdateTrace trace = parse_trace(in);
  ASSERT_EQ(trace.steps.size(), 1u);
  EXPECT_EQ(trace.steps[0].rules.size(), 6u);
  for (const Rule& r : trace.steps[0].rules) EXPECT_EQ(r.priority, 10);
}

TEST(Trace, MalformedInputsThrow) {
  for (const char* bad : {"del\n", "add\n", "add 5\n", "frobnicate 1\n",
                          "add 5 @bogus\n"}) {
    std::istringstream in(bad);
    EXPECT_THROW(parse_trace(in), std::runtime_error) << bad;
  }
}

TEST(Trace, WriteParseRoundTrip) {
  const UpdateTrace original = synthesize_churn_trace(10, 15, 42);
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  const UpdateTrace reparsed = parse_trace(in);
  ASSERT_EQ(reparsed.steps.size(), original.steps.size());
  for (size_t i = 0; i < original.steps.size(); ++i) {
    EXPECT_EQ(reparsed.steps[i].kind, original.steps[i].kind);
    if (original.steps[i].kind == TraceStep::Kind::kDelete) {
      EXPECT_EQ(reparsed.steps[i].ref, original.steps[i].ref);
    } else {
      ASSERT_EQ(reparsed.steps[i].rules.size(), original.steps[i].rules.size());
      for (size_t k = 0; k < original.steps[i].rules.size(); ++k) {
        EXPECT_EQ(reparsed.steps[i].rules[k].match, original.steps[i].rules[k].match);
      }
    }
  }
}

TEST(Trace, SynthesizedTraceIsDeterministicAndReplayable) {
  const UpdateTrace a = synthesize_churn_trace(20, 30, 7);
  const UpdateTrace b = synthesize_churn_trace(20, 30, 7);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  ASSERT_EQ(a.steps.size(), 60u);  // delete + add per update
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].kind == TraceStep::Kind::kAdd) {
      EXPECT_EQ(a.steps[i].rules[0].match, b.steps[i].rules[0].match);
    } else {
      EXPECT_EQ(a.steps[i].ref, b.steps[i].ref);
    }
  }

  // Replay against a leaf table: every reference resolves, table size is
  // conserved (one del + one add per update).
  Rng rng(3);
  std::vector<Rule> initial;
  for (int i = 0; i < 20; ++i) initial.push_back(testutil::random_rule(rng, 20 - i));
  LeafNode leaf{FlowTable{initial}};

  std::vector<RuleId> by_add_index;  // 1-based
  for (const TraceStep& step : a.steps) {
    if (step.kind == TraceStep::Kind::kAdd) {
      for (const Rule& r : step.rules) {
        by_add_index.push_back(r.id);
        leaf.insert(r);
      }
    } else {
      RuleId victim;
      if (step.ref < 0) {
        victim = initial[static_cast<size_t>(-step.ref - 1)].id;
      } else {
        victim = by_add_index[static_cast<size_t>(step.ref - 1)];
      }
      EXPECT_FALSE(leaf.remove(victim).empty()) << "dangling trace reference";
    }
  }
  EXPECT_EQ(leaf.visible_size(), 20u);
}

}  // namespace
}  // namespace ruletris
