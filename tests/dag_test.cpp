// Tests for the dependency graph structure and the brute-force minimum-DAG
// builder (the oracle for all compositional DAG construction).
#include <gtest/gtest.h>

#include <unordered_set>

#include "dag/builder.h"
#include "dag/dependency_graph.h"
#include "dag/id_set.h"
#include "flowspace/rule.h"
#include "test_util.h"

namespace ruletris {
namespace {

using dag::build_min_dag;
using dag::DagDelta;
using dag::DependencyGraph;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using testutil::lookup_ordered;
using testutil::random_dag_linearization;
using util::Rng;

TEST(DependencyGraph, BasicEdges) {
  DependencyGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.successors(1).size(), 2u);
  EXPECT_EQ(g.predecessors(2).size(), 1u);
}

TEST(DependencyGraph, SelfEdgeRejected) {
  DependencyGraph g;
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(DependencyGraph, DuplicateEdgeIdempotent) {
  DependencyGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DependencyGraph, RemoveVertexDropsIncidentEdges) {
  DependencyGraph g;
  g.add_edge(1, 2);
  g.add_edge(3, 2);
  g.add_edge(2, 4);
  g.remove_vertex(2);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_TRUE(g.successors(1).empty());
}

TEST(DependencyGraph, TopoOrderHighToLow) {
  DependencyGraph g;
  // 3 depends on 2 depends on 1: matched order must be 1, 2, 3.
  g.add_edge(3, 2);
  g.add_edge(2, 1);
  const auto order = g.topo_order_high_to_low();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
}

TEST(DependencyGraph, CycleDetected) {
  DependencyGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.would_create_cycle(3, 1));
  EXPECT_FALSE(g.would_create_cycle(1, 3));
  g.add_edge(3, 1);
  EXPECT_THROW(g.topo_order_high_to_low(), std::runtime_error);
}

TEST(DependencyGraph, Reachability) {
  DependencyGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_vertex(4);
  EXPECT_TRUE(g.reaches(1, 3));
  EXPECT_FALSE(g.reaches(3, 1));
  EXPECT_FALSE(g.reaches(1, 4));
}

TEST(DependencyGraph, ApplyDelta) {
  DependencyGraph g;
  g.add_edge(1, 2);
  DagDelta delta;
  delta.removed_edges.emplace_back(1, 2);
  delta.added_vertices.push_back(3);
  delta.added_edges.emplace_back(3, 1);
  g.apply(delta);
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(3, 1));
}

TEST(DependencyGraph, EqualityIgnoresInsertionOrder) {
  DependencyGraph a, b;
  a.add_edge(1, 2);
  a.add_edge(3, 2);
  b.add_edge(3, 2);
  b.add_edge(1, 2);
  EXPECT_EQ(a, b);
  b.add_vertex(9);
  EXPECT_FALSE(a == b);
}

// --- brute-force builder ----------------------------------------------------

FlowTable paper_fig2_table() {
  // Rules from Fig. 2: 00*, **0, 0*1, **1, *** on a 3-bit field (we embed the
  // 3 bits in the top of dst_ip).
  auto mk = [](uint32_t value, uint32_t mask, int prio) {
    TernaryMatch m;
    m.set_ternary(FieldId::kDstIp, value << 29, mask << 29);
    return Rule::make(m, ActionList{Action::forward(static_cast<uint32_t>(prio))}, prio);
  };
  std::vector<Rule> rules;
  rules.push_back(mk(0b000, 0b110, 20));  // Rule 1: 00*
  rules.push_back(mk(0b000, 0b001, 15));  // Rule 2: **0
  rules.push_back(mk(0b001, 0b101, 15));  // Rule 3: 0*1  (value 0*1)
  rules.push_back(mk(0b001, 0b001, 10));  // Rule 4: **1
  rules.push_back(mk(0b000, 0b000, 5));   // Rule 5: ***
  return FlowTable(std::move(rules));
}

TEST(DagBuilder, PaperFig2Structure) {
  const FlowTable table = paper_fig2_table();
  const auto& r = table.rules();
  ASSERT_EQ(r.size(), 5u);
  const DependencyGraph g = build_min_dag(table);

  const auto id = [&](size_t i) { return r[i].id; };
  // Rule indexes in priority order: 0=Rule1(00*), 1=Rule2(**0), 2=Rule3(0*1),
  // 3=Rule4(**1), 4=Rule5(***).
  EXPECT_TRUE(g.has_edge(id(1), id(0)));  // **0 depends on 00*
  EXPECT_TRUE(g.has_edge(id(2), id(0)));  // 0*1 depends on 00* (overlap 001)
  EXPECT_TRUE(g.has_edge(id(3), id(2)));  // **1 depends on 0*1
  EXPECT_TRUE(g.has_edge(id(4), id(1)));  // *** depends on **0
  EXPECT_TRUE(g.has_edge(id(4), id(3)));  // *** depends on **1
  // **1 ∩ 00* = 001 is fully covered by 0*1 in between: no direct edge.
  EXPECT_FALSE(g.has_edge(id(3), id(0)));
  // *** ∩ 00* is covered by **0 and 0*1; *** ∩ 0*1 is covered by **1.
  EXPECT_FALSE(g.has_edge(id(4), id(0)));
  EXPECT_FALSE(g.has_edge(id(4), id(2)));
  EXPECT_EQ(g.edge_count(), 5u);
}

TEST(DagBuilder, NestedPrefixChain) {
  // /24 ⊂ /16 ⊂ /8: the minimum DAG is a chain, not a triangle.
  TernaryMatch p8, p16, p24;
  p8.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  p16.set_prefix(FieldId::kDstIp, 0x0a0a0000, 16);
  p24.set_prefix(FieldId::kDstIp, 0x0a0a0a00, 24);
  std::vector<Rule> rules;
  rules.push_back(Rule::make(p24, ActionList{Action::forward(1)}, 30));
  rules.push_back(Rule::make(p16, ActionList{Action::forward(2)}, 20));
  rules.push_back(Rule::make(p8, ActionList{Action::forward(3)}, 10));
  const FlowTable table{std::move(rules)};
  const auto& r = table.rules();
  const DependencyGraph g = build_min_dag(table);
  EXPECT_TRUE(g.has_edge(r[1].id, r[0].id));
  EXPECT_TRUE(g.has_edge(r[2].id, r[1].id));
  EXPECT_FALSE(g.has_edge(r[2].id, r[0].id)) << "transitively covered edge must be absent";
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(DagBuilder, DisjointRulesNoEdges) {
  TernaryMatch a, b;
  a.set_prefix(FieldId::kDstIp, 0x0a000000, 8);
  b.set_prefix(FieldId::kDstIp, 0x0b000000, 8);
  std::vector<Rule> rules;
  rules.push_back(Rule::make(a, ActionList{Action::drop()}, 2));
  rules.push_back(Rule::make(b, ActionList{Action::drop()}, 1));
  const DependencyGraph g = build_min_dag(FlowTable{std::move(rules)});
  EXPECT_EQ(g.edge_count(), 0u);
}

/// Property: any linearization respecting the minimum DAG classifies
/// packets exactly like the original priority order.
TEST(DagBuilder, DagConstraintsSufficientForSemantics) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rule> rules;
    const int n = 6 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < n; ++i) {
      rules.push_back(testutil::random_rule(rng, n - i));
    }
    const FlowTable table{rules};
    const DependencyGraph g = build_min_dag(table);

    for (int reorder = 0; reorder < 5; ++reorder) {
      const auto layout = random_dag_linearization(table.rules(), g, rng);
      ASSERT_EQ(layout.size(), table.rules().size());
      for (int k = 0; k < 50; ++k) {
        const auto p = testutil::random_packet(rng);
        const Rule* expect = table.lookup(p);
        const Rule* got = lookup_ordered(layout, p);
        ASSERT_EQ(expect == nullptr, got == nullptr);
        if (expect != nullptr) {
          EXPECT_EQ(expect->id, got->id)
              << "DAG-respecting layout diverged from priority order";
        }
      }
    }
  }
}

/// Property: every DAG edge is necessary — flipping the two endpoint rules
/// (keeping everything else fixed) changes semantics for some packet in
/// their overlap. This is the *minimality* direction.
TEST(DagBuilder, EdgesAreDirectDependencies) {
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Rule> rules;
    const int n = 5 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < n; ++i) rules.push_back(testutil::random_rule(rng, n - i));
    const FlowTable table{rules};
    const DependencyGraph g = build_min_dag(table);
    const auto& ordered = table.rules();

    for (const auto& [u, v] : g.edges()) {
      // v is matched before u; their overlap must not be fully covered by
      // the rules strictly between them.
      const size_t pv = table.position(v);
      const size_t pu = table.position(u);
      ASSERT_LT(pv, pu);
      auto overlap = ordered[pu].match.intersect(ordered[pv].match);
      ASSERT_TRUE(overlap.has_value());
      std::vector<TernaryMatch> between;
      for (size_t k = pv + 1; k < pu; ++k) between.push_back(ordered[k].match);
      EXPECT_FALSE(flowspace::is_covered_by(*overlap, between))
          << "edge exists although fully covered -> not minimal";
    }
  }
}

TEST(OrderRespectsDag, DetectsViolation) {
  DependencyGraph g;
  std::vector<Rule> rules;
  rules.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::drop()}, 2));
  rules.push_back(Rule::make(TernaryMatch::wildcard(), ActionList{Action::forward(1)}, 1));
  g.add_edge(rules[1].id, rules[0].id);
  EXPECT_TRUE(dag::order_respects_dag(rules, g));
  std::swap(rules[0], rules[1]);
  EXPECT_FALSE(dag::order_respects_dag(rules, g));
}

// ---------------------------------------------------------------------------
// IdSet: the flat adjacency set backing DependencyGraph
// ---------------------------------------------------------------------------

/// Differential fuzz against std::unordered_set: a long random stream of
/// insert/erase/contains/clear must agree op-for-op, and iteration must
/// visit exactly the reference elements. Exercises the backward-shift
/// deletion and the grow/rehash path (ids cluster to force probe chains).
TEST(IdSet, MatchesUnorderedSetUnderRandomChurn) {
  util::Rng rng(0x1d5e7);
  dag::IdSet set;
  std::unordered_set<RuleId> ref;
  for (int op = 0; op < 20000; ++op) {
    // Small id universe => plenty of collisions, erases of present ids,
    // and re-inserts of just-erased ids.
    const RuleId id = 1 + rng.next_below(512);
    switch (rng.next_below(4)) {
      case 0:
      case 1:
        EXPECT_EQ(set.insert(id), ref.insert(id).second);
        break;
      case 2:
        EXPECT_EQ(set.erase(id), ref.erase(id) != 0);
        break;
      default:
        EXPECT_EQ(set.count(id), ref.count(id));
        break;
    }
    if (op % 4096 == 0) {
      set.clear();
      ref.clear();
    }
  }
  ASSERT_EQ(set.size(), ref.size());
  std::unordered_set<RuleId> seen;
  for (RuleId id : set) EXPECT_TRUE(seen.insert(id).second) << "duplicate " << id;
  EXPECT_EQ(seen, ref);
}

TEST(IdSet, EqualityIsOrderIndependentAndReserveKeepsElements) {
  dag::IdSet a;
  dag::IdSet b;
  for (RuleId id = 1; id <= 100; ++id) a.insert(id);
  for (RuleId id = 100; id >= 1; --id) b.insert(id);
  EXPECT_EQ(a, b);
  b.erase(57);
  EXPECT_NE(a, b);
  a.reserve(4096);  // force a rehash well past the current table
  EXPECT_EQ(a.size(), 100u);
  for (RuleId id = 1; id <= 100; ++id) EXPECT_TRUE(a.contains(id));
  dag::IdSet c = a;  // copies stay independent
  c.erase(1);
  EXPECT_TRUE(a.contains(1));
  EXPECT_FALSE(c.contains(1));
}

}  // namespace
}  // namespace ruletris
