// Per-operation atomicity: the DAG scheduler's moving chains keep the TCAM
// semantically correct after EVERY primitive operation — the property that
// makes RuleTris updates hitless for in-flight traffic. The observer hook
// checks every intermediate device state against the evolving logical table.
#include <gtest/gtest.h>

#include "classbench/generator.h"
#include "dag/builder.h"
#include "tcam/dag_scheduler.h"
#include "test_util.h"
#include "util/logging.h"

namespace ruletris {
namespace {

using dag::build_min_dag;
using flowspace::FlowTable;
using flowspace::Packet;
using flowspace::Rule;
using flowspace::RuleId;
using tcam::DagScheduler;
using tcam::Tcam;
using util::Rng;

/// During an insert's move chain, every packet must still map to the same
/// rule as before the insert began OR to the rule being inserted — never to
/// some unrelated rule that a half-executed chain exposed.
class MidUpdateChecker {
 public:
  MidUpdateChecker(Tcam& tcam, Rng& rng) : tcam_(tcam), rng_(rng) {}

  /// Snapshot the pre-update truth and arm the observer.
  void arm(const FlowTable& pre_update_table, const Rule& incoming) {
    pre_ = &pre_update_table;
    incoming_ = &incoming;
    violations_ = 0;
    checks_ = 0;
    tcam_.set_op_observer([this](Tcam::Op, size_t) { check(); });
  }

  void disarm() { tcam_.set_op_observer(nullptr); }

  size_t violations() const { return violations_; }
  size_t checks() const { return checks_; }

 private:
  void check() {
    for (int k = 0; k < 20; ++k) {
      const Packet p = testutil::random_packet(rng_);
      const Rule* now = tcam_.lookup(p);
      const Rule* before = pre_->lookup(p);
      ++checks_;
      const bool matches_before =
          (now == nullptr && before == nullptr) ||
          (now != nullptr && before != nullptr && now->id == before->id);
      const bool is_incoming = now != nullptr && now->id == incoming_->id &&
                               incoming_->match.matches(p);
      if (!matches_before && !is_incoming) ++violations_;
    }
  }

  Tcam& tcam_;
  Rng& rng_;
  const FlowTable* pre_ = nullptr;
  const Rule* incoming_ = nullptr;
  size_t violations_ = 0;
  size_t checks_ = 0;
};

TEST(Atomicity, DagChainsAreHitless) {
  util::set_log_level(util::LogLevel::kOff);
  Rng rng(99);
  size_t total_checks = 0;
  for (int trial = 0; trial < 6; ++trial) {
    // Build a full table, install all but one rule into a tight TCAM, then
    // insert the last one — chains are forced by the tight capacity.
    const int n = 14 + static_cast<int>(rng.next_below(8));
    std::vector<Rule> rules;
    for (int i = 0; i <= n; ++i) {
      rules.push_back(testutil::random_rule(rng, n + 1 - i));
    }
    FlowTable table{rules};
    const auto graph = build_min_dag(table);

    Tcam tcam(static_cast<size_t>(n + 2));
    DagScheduler scheduler(tcam);
    scheduler.graph() = graph;

    const auto order = graph.topo_order_high_to_low();
    const RuleId last = order.back();
    for (RuleId id : order) {
      if (id == last) continue;
      ASSERT_TRUE(scheduler.insert(table.rule(id)));
    }

    // Pre-update truth: the table without `last`.
    FlowTable pre = table;
    pre.erase(last);

    MidUpdateChecker checker(tcam, rng);
    checker.arm(pre, table.rule(last));
    ASSERT_TRUE(scheduler.insert(table.rule(last)));
    checker.disarm();

    EXPECT_EQ(checker.violations(), 0u)
        << "a mid-chain state exposed wrong semantics (trial " << trial << ")";
    total_checks += checker.checks();
  }
  EXPECT_GT(total_checks, 200u) << "chains too short to exercise atomicity";
}

TEST(Atomicity, CacheSwapStreamIsHitless) {
  util::set_log_level(util::LogLevel::kOff);
  Rng rng(123);
  const FlowTable fib{classbench::generate_router(150, rng)};
  const auto graph = build_min_dag(fib);

  Tcam tcam(48);
  DagScheduler scheduler(tcam);
  scheduler.graph() = graph;

  std::vector<RuleId> cached;
  for (RuleId id : graph.topo_order_high_to_low()) {
    if (tcam.occupied() + 4 >= tcam.capacity()) break;
    ASSERT_TRUE(scheduler.insert(fib.rule(id)));
    cached.push_back(id);
  }

  // Each insert during churn must never expose a rule that contradicts the
  // pre-insert TCAM content for packets outside the incoming rule.
  size_t checks = 0, violations = 0;
  for (int step = 0; step < 60; ++step) {
    const size_t out_idx = rng.next_below(cached.size());
    scheduler.remove(cached[out_idx]);

    RuleId in = 0;
    for (int guard = 0; guard < 200; ++guard) {
      const auto& all = fib.rules();
      const RuleId candidate = all[rng.next_below(all.size())].id;
      if (!tcam.contains(candidate)) {
        in = candidate;
        break;
      }
    }
    if (in == 0) continue;
    // Rebind the vertex + its edges (remove() pruned the out rule).
    scheduler.graph().add_vertex(in);
    for (RuleId succ : graph.successors(in)) scheduler.graph().add_edge(in, succ);
    for (RuleId pred : graph.predecessors(in)) scheduler.graph().add_edge(pred, in);

    // Snapshot pre-insert content in address order (the DAG firmware's
    // layout is priority-free, so address order IS the match order).
    const std::vector<Rule> pre = tcam.entries_high_to_low();
    const Rule& incoming = fib.rule(in);
    tcam.set_op_observer([&](Tcam::Op, size_t) {
      for (int k = 0; k < 5; ++k) {
        Packet p;
        p.set(flowspace::FieldId::kDstIp, rng.next_u32());
        const Rule* now = tcam.lookup(p);
        const Rule* before = testutil::lookup_ordered(pre, p);
        ++checks;
        const bool same = (now == nullptr) == (before == nullptr) &&
                          (now == nullptr || now->id == before->id);
        const bool is_incoming =
            now != nullptr && now->id == in && incoming.match.matches(p);
        if (!same && !is_incoming) ++violations;
      }
    });
    ASSERT_TRUE(scheduler.insert(incoming));
    tcam.set_op_observer(nullptr);
    cached[out_idx] = in;
  }
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(checks, 100u);
}

}  // namespace
}  // namespace ruletris
