// Crash-consistency unit tests: the write-ahead ApplyJournal lifecycle, the
// DagScheduler's transactional rollback/roll-forward recovery, the typed
// ApplyStatus (kOk / kTableFull / kRolledBack) semantics, and the firmware
// state auditor's violation detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dag/dependency_graph.h"
#include "tcam/apply_journal.h"
#include "tcam/auditor.h"
#include "tcam/backend_update.h"
#include "tcam/dag_scheduler.h"
#include "util/logging.h"

namespace ruletris {
namespace {

using dag::DependencyGraph;
using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::Rule;
using flowspace::RuleId;
using flowspace::TernaryMatch;
using tcam::ApplyJournal;
using tcam::ApplyStatus;
using tcam::AuditReport;
using tcam::audit_state;
using tcam::CrashError;
using tcam::DagScheduler;
using tcam::Tcam;

Rule make_rule(uint32_t tag) {
  TernaryMatch m;
  m.set_exact(FieldId::kDstPort, tag);
  return Rule::make(m, ActionList{Action::forward(1)}, 0);
}

TEST(ApplyJournal, LifecycleAndRendering) {
  ApplyJournal journal;
  EXPECT_FALSE(journal.open());

  journal.begin(7);
  EXPECT_TRUE(journal.open());
  EXPECT_FALSE(journal.sealed());
  EXPECT_EQ(journal.txn_id(), 7u);
  EXPECT_THROW(journal.begin(8), std::logic_error);  // one txn at a time

  ApplyJournal::Op move;
  move.kind = ApplyJournal::OpKind::kMove;
  move.from = 3;
  move.to = 5;
  journal.record(move);
  EXPECT_FALSE(journal.ops().back().applied);  // intent only, crash point
  journal.mark_applied();
  EXPECT_TRUE(journal.ops().back().applied);

  ApplyJournal::Op write;
  write.kind = ApplyJournal::OpKind::kWrite;
  write.to = 3;
  write.u = 42;
  journal.record(write);  // never marked applied: torn at this op

  const std::string rendered = to_string(journal);
  EXPECT_NE(rendered.find("move"), std::string::npos);
  EXPECT_NE(rendered.find("not applied"), std::string::npos);

  journal.seal();
  EXPECT_TRUE(journal.sealed());
  journal.commit();
  EXPECT_FALSE(journal.open());
  EXPECT_EQ(journal.size(), 0u);
}

/// The Fig. 2 scenario rebuilt around fixed Rule objects so snapshots stay
/// comparable across independent instances (Rule::make assigns globally
/// fresh ids, so the rules must be created once, outside).
struct Fig2 {
  Tcam tcam{6};
  ApplyJournal journal;
  std::unique_ptr<DagScheduler> sched;

  explicit Fig2(const std::vector<Rule>& rules) {
    tcam.write(5, rules[0]);
    tcam.write(4, rules[1]);
    tcam.write(3, rules[2]);
    tcam.write(2, rules[3]);
    tcam.write(1, rules[4]);
    sched = std::make_unique<DagScheduler>(tcam);
    DependencyGraph g;
    g.add_edge(rules[1].id, rules[0].id);  // 2 -> 1
    g.add_edge(rules[2].id, rules[0].id);  // 3 -> 1
    g.add_edge(rules[3].id, rules[2].id);  // 4 -> 3
    g.add_edge(rules[4].id, rules[1].id);  // 5 -> 2
    g.add_edge(rules[4].id, rules[3].id);  // 5 -> 4
    sched->graph() = g;
    sched->set_journal(&journal);
  }
};

/// The Fig. 2 insert as one BackendUpdate, so the DAG delta is journaled
/// alongside the TCAM ops and must roll back with them.
tcam::BackendUpdate fig2_update(const std::vector<Rule>& rules, const Rule& r6) {
  tcam::BackendUpdate update;
  update.added.push_back(r6);
  update.dag.added_vertices.push_back(r6.id);
  update.dag.added_edges = {{r6.id, rules[0].id},
                            {rules[1].id, r6.id},
                            {rules[4].id, r6.id}};
  return update;
}

std::vector<std::pair<RuleId, RuleId>> sorted_edges(const DependencyGraph& g) {
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Crash at EVERY injection point of the Fig. 2 chain-moving update. Each
/// torn transaction must recover to exactly the pre-update state (rollback)
/// or exactly the applied state (roll-forward at the seal->commit gap), pass
/// the auditor, and then accept a clean re-apply to the reference layout.
TEST(CrashRecovery, EveryCrashPointRecoversToAnEndpointState) {
  std::vector<Rule> rules;
  for (uint32_t i = 1; i <= 5; ++i) rules.push_back(make_rule(i));
  const Rule r6 = make_rule(6);
  const tcam::BackendUpdate update = fig2_update(rules, r6);

  // Reference run: no crash. Also counts the injection points (one per
  // journaled op plus the commit-point check after seal()).
  size_t total_points = 0;
  Fig2 ref(rules);
  ref.sched->set_crash_hook([&] {
    ++total_points;
    return false;
  });
  const std::string pre_layout = ref.tcam.to_string();  // before: shared start
  {
    Fig2 pristine(rules);
    ASSERT_EQ(pristine.tcam.to_string(), pre_layout);  // snapshots comparable
  }
  ASSERT_EQ(ref.sched->apply_status(update), ApplyStatus::kOk);
  EXPECT_EQ(ref.sched->last_chain_moves(), 2u);  // still the Fig. 2 chain
  const std::string applied_layout = ref.tcam.to_string();
  const auto applied_edges = sorted_edges(ref.sched->graph());
  // TCAM ops + DAG delta ops + the commit-point check.
  ASSERT_GE(total_points, 1u + 3u + 2u + 1u + 1u);

  for (size_t k = 1; k <= total_points; ++k) {
    Fig2 torn(rules);
    const auto pre_edges = sorted_edges(torn.sched->graph());
    size_t calls = 0;
    torn.sched->set_crash_hook([&calls, k] { return ++calls == k; });
    EXPECT_THROW(torn.sched->apply_status(update), CrashError) << "point " << k;
    EXPECT_TRUE(torn.journal.open()) << "point " << k;

    const DagScheduler::RecoveryResult r = torn.sched->recover();
    EXPECT_FALSE(torn.journal.open()) << "point " << k;
    const AuditReport audit = audit_state(torn.tcam, torn.sched->graph());
    EXPECT_TRUE(audit.clean()) << "point " << k << "\n" << audit.to_string();
    EXPECT_TRUE(torn.sched->layout_valid()) << "point " << k;

    if (r.outcome == DagScheduler::RecoveryResult::Outcome::kRolledForward) {
      // Only the very last point (between seal and commit) rolls forward.
      EXPECT_EQ(k, total_points);
      EXPECT_EQ(torn.tcam.to_string(), applied_layout) << "point " << k;
      EXPECT_EQ(sorted_edges(torn.sched->graph()), applied_edges);
      EXPECT_EQ(r.undone_ops, 0u);
    } else {
      EXPECT_EQ(r.outcome, DagScheduler::RecoveryResult::Outcome::kRolledBack);
      EXPECT_EQ(torn.tcam.to_string(), pre_layout) << "point " << k;
      EXPECT_EQ(sorted_edges(torn.sched->graph()), pre_edges);
      // The update never happened: a clean re-apply lands on the reference.
      ASSERT_EQ(torn.sched->apply_status(update), ApplyStatus::kOk)
          << "point " << k;
      EXPECT_EQ(torn.tcam.to_string(), applied_layout) << "point " << k;
      EXPECT_EQ(sorted_edges(torn.sched->graph()), applied_edges);
    }
  }
}

TEST(CrashRecovery, RecoverOnCleanJournalIsANoop) {
  std::vector<Rule> rules;
  for (uint32_t i = 1; i <= 5; ++i) rules.push_back(make_rule(i));
  Fig2 fig(rules);
  const std::string before = fig.tcam.to_string();
  const DagScheduler::RecoveryResult r = fig.sched->recover();
  EXPECT_EQ(r.outcome, DagScheduler::RecoveryResult::Outcome::kClean);
  EXPECT_EQ(r.undone_ops, 0u);
  EXPECT_EQ(fig.tcam.to_string(), before);
}

TEST(ApplyStatusSemantics, FullTableWithNothingExecutedIsTableFull) {
  Tcam tcam(2);
  ApplyJournal journal;
  DagScheduler sched(tcam);
  sched.set_journal(&journal);
  ASSERT_EQ(sched.insert_status(make_rule(1)), ApplyStatus::kOk);
  ASSERT_EQ(sched.insert_status(make_rule(2)), ApplyStatus::kOk);

  // The rule's vertex already exists, so the failing insert journals
  // nothing: a pure capacity rejection, not a rollback.
  const Rule r3 = make_rule(3);
  sched.graph().add_vertex(r3.id);
  util::set_log_level(util::LogLevel::kOff);
  EXPECT_EQ(sched.insert_status(r3), ApplyStatus::kTableFull);
  util::set_log_level(util::LogLevel::kWarn);
  EXPECT_FALSE(journal.open());
  EXPECT_EQ(tcam.occupied(), 2u);
  EXPECT_TRUE(audit_state(tcam, sched.graph()).clean());
}

TEST(ApplyStatusSemantics, OverflowingUpdateRollsBackAndAuditsClean) {
  Tcam tcam(3);
  ApplyJournal journal;
  DagScheduler sched(tcam);
  sched.set_journal(&journal);
  std::vector<Rule> installed;
  for (uint32_t i = 1; i <= 3; ++i) {
    installed.push_back(make_rule(i));
    ASSERT_EQ(sched.insert_status(installed.back()), ApplyStatus::kOk);
  }
  const std::string before = tcam.to_string();

  // Two fresh rules against zero free slots: the first add journals its
  // vertex before the insert fails, so the executed prefix must be undone.
  tcam::BackendUpdate update;
  update.added.push_back(make_rule(10));
  update.added.push_back(make_rule(11));
  for (const Rule& r : update.added) update.dag.added_vertices.push_back(r.id);

  util::set_log_level(util::LogLevel::kOff);
  EXPECT_EQ(sched.apply_status(update), ApplyStatus::kRolledBack);
  util::set_log_level(util::LogLevel::kWarn);
  EXPECT_FALSE(journal.open());
  EXPECT_EQ(tcam.to_string(), before);
  for (const Rule& r : update.added) {
    EXPECT_FALSE(sched.graph().has_vertex(r.id));  // vertex adds undone too
  }
  const AuditReport audit = audit_state(tcam, sched.graph(), installed);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(Auditor, CleanStateReportsNoViolations) {
  Tcam tcam(4);
  DagScheduler sched(tcam);
  std::vector<Rule> rules;
  for (uint32_t i = 1; i <= 3; ++i) {
    rules.push_back(make_rule(i));
    ASSERT_TRUE(sched.insert(rules.back()));
  }
  const AuditReport audit = audit_state(tcam, sched.graph(), rules);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
  EXPECT_EQ(audit.entries_checked, 3u);
}

TEST(Auditor, DetectsAddressOrderViolation) {
  // u at address 2, v at address 1, edge u -> v: v must sit ABOVE u.
  Tcam tcam(4);
  const Rule u = make_rule(1);
  const Rule v = make_rule(2);
  tcam.write(2, u);
  tcam.write(1, v);
  DependencyGraph g;
  g.add_edge(u.id, v.id);
  const AuditReport audit = audit_state(tcam, g);
  EXPECT_FALSE(audit.clean());
  EXPECT_NE(audit.to_string().find("edge"), std::string::npos);
}

TEST(Auditor, DetectsOrphanEntryWithoutVertex) {
  Tcam tcam(4);
  const Rule r = make_rule(1);
  tcam.write(0, r);
  const DependencyGraph empty_graph;
  const AuditReport audit = audit_state(tcam, empty_graph);
  EXPECT_FALSE(audit.clean());
}

TEST(Auditor, DetectsExpectedSetMismatches) {
  Tcam tcam(4);
  DependencyGraph g;
  const Rule installed = make_rule(1);
  const Rule missing = make_rule(2);
  tcam.write(0, installed);
  g.add_vertex(installed.id);

  // Missing expected rule + unexpected installed rule.
  const AuditReport wrong_set = audit_state(tcam, g, {missing});
  EXPECT_FALSE(wrong_set.clean());

  // Right id, wrong actions: a torn chain must not silently change what a
  // rule does.
  Rule tampered = installed;
  tampered.actions = ActionList{Action::drop()};
  const AuditReport wrong_actions = audit_state(tcam, g, {tampered});
  EXPECT_FALSE(wrong_actions.clean());

  const AuditReport exact = audit_state(tcam, g, {installed});
  EXPECT_TRUE(exact.clean()) << exact.to_string();
}

}  // namespace
}  // namespace ruletris
