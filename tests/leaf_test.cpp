// LeafNode: incremental minimum-DAG maintenance must exactly match the
// brute-force oracle after every update.
#include <gtest/gtest.h>

#include "compiler/leaf.h"
#include "dag/builder.h"
#include "test_util.h"

namespace ruletris {
namespace {

using compiler::LeafNode;
using compiler::TableUpdate;
using dag::build_min_dag;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using testutil::random_rule;
using util::Rng;

TEST(LeafNode, BulkLoadMatchesOracle) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Rule> rules;
    const int n = 5 + static_cast<int>(rng.next_below(15));
    for (int i = 0; i < n; ++i) rules.push_back(random_rule(rng, n - i));
    LeafNode leaf{FlowTable{rules}};
    EXPECT_EQ(leaf.visible_graph(), build_min_dag(leaf.table()));
  }
}

TEST(LeafNode, InsertKeepsMinimumDag) {
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    LeafNode leaf{FlowTable{}};
    for (int i = 0; i < 25; ++i) {
      leaf.insert(random_rule(rng, 1 + static_cast<int>(rng.next_below(30))));
      ASSERT_EQ(leaf.visible_graph(), build_min_dag(leaf.table()))
          << "after insert " << i << " in trial " << trial;
    }
  }
}

TEST(LeafNode, MixedInsertDeleteKeepsMinimumDag) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    LeafNode leaf{FlowTable{}};
    std::vector<RuleId> live;
    for (int step = 0; step < 60; ++step) {
      if (!live.empty() && rng.next_bool(0.4)) {
        const size_t pick = rng.next_below(live.size());
        leaf.remove(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        Rule r = random_rule(rng, 1 + static_cast<int>(rng.next_below(30)));
        live.push_back(r.id);
        leaf.insert(std::move(r));
      }
      ASSERT_EQ(leaf.visible_graph(), build_min_dag(leaf.table()))
          << "after step " << step << " in trial " << trial;
    }
  }
}

TEST(LeafNode, UpdateDeltasReplayToSameGraph) {
  // Applying the emitted DagDeltas to a shadow graph must reproduce the
  // leaf's own graph (this is what the composed nodes consume).
  Rng rng(4);
  LeafNode leaf{FlowTable{}};
  dag::DependencyGraph shadow;
  std::vector<RuleId> live;
  for (int step = 0; step < 80; ++step) {
    TableUpdate update;
    if (!live.empty() && rng.next_bool(0.4)) {
      const size_t pick = rng.next_below(live.size());
      update = leaf.remove(live[pick]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      Rule r = random_rule(rng, 1 + static_cast<int>(rng.next_below(30)));
      live.push_back(r.id);
      update = leaf.insert(std::move(r));
    }
    shadow.apply(update.dag);
    ASSERT_EQ(shadow, leaf.visible_graph()) << "delta replay diverged at step " << step;
  }
}

TEST(LeafNode, RemoveMissingIsNoop) {
  LeafNode leaf{FlowTable{}};
  EXPECT_TRUE(leaf.remove(12345).empty());
}

TEST(LeafNode, VisibleInterface) {
  Rng rng(5);
  LeafNode leaf{FlowTable{}};
  Rule r = random_rule(rng, 10);
  const RuleId id = r.id;
  const auto update = leaf.insert(std::move(r));
  ASSERT_EQ(update.added.size(), 1u);
  EXPECT_EQ(update.added[0].id, id);
  EXPECT_TRUE(leaf.has_visible(id));
  EXPECT_EQ(leaf.visible_size(), 1u);
  const auto overlapping = leaf.visible_overlapping(leaf.visible_match(id));
  ASSERT_EQ(overlapping.size(), 1u);
}

}  // namespace
}  // namespace ruletris
