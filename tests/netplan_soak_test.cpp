// Chaos soak for the network-wide update planner: random topologies and
// policies driven through the fleet-gated runtime under the full fault
// gauntlet (drops, duplicates, delay reordering, bit flips, agent restarts,
// firmware crashes mid-transaction), with the consistency auditor replaying
// packets between every round. Zero mixed-version observations allowed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "flowspace/rule.h"
#include "netplan/auditor.h"
#include "netplan/fleet.h"
#include "netplan/materialize.h"
#include "netplan/planner.h"
#include "netplan/policy.h"
#include "netplan/topology.h"
#include "runtime/config.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using flowspace::Action;
using flowspace::ActionList;
using flowspace::FieldId;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::TernaryMatch;
using netplan::AuditConfig;
using netplan::ConsistencyAuditor;
using netplan::LookupFn;
using netplan::MutationSpec;
using netplan::NetworkPolicy;
using netplan::Strategy;
using netplan::Topology;
using netplan::UpdatePlan;
using runtime::FaultSpec;

std::vector<Rule> soak_rules(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Rule> rules;
  for (size_t i = 0; i < n; ++i) {
    TernaryMatch m;
    if (i % 5 == 4) {
      m.set_prefix(FieldId::kDstIp,
                   static_cast<uint32_t>(rng.next_u64()) & 0xffff0000u, 16);
    } else {
      m.set_exact(FieldId::kDstIp, static_cast<uint32_t>(rng.next_u64()));
      if (i % 2 == 0) m.set_exact(FieldId::kSrcPort, uint32_t(i) & 0xffffu);
    }
    rules.push_back(Rule::make(m, ActionList{Action::forward(1)},
                               static_cast<int32_t>(500 - i)));
  }
  return rules;
}

struct SoakTotals {
  size_t crashes = 0;
  size_t restarts = 0;
  size_t dropped = 0;
  size_t corrupted = 0;
  size_t audits = 0;
};

/// One full fleet run under crashy faults; fails the test on any mixed
/// observation, non-convergence, or non-completion.
void soak_one(uint64_t seed, Strategy strategy, SoakTotals& totals) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " strategy " +
               netplan::strategy_name(strategy));
  const Topology topo = Topology::random_connected(6, 3, seed);
  const NetworkPolicy oldp =
      netplan::policy_from_rules(topo, soak_rules(10, seed), seed);
  MutationSpec mut;
  mut.reroute_fraction = 0.6;
  mut.drop_flows = 2;
  mut.seed = seed;
  for (uint32_t a = 0; a < 2; ++a) {
    TernaryMatch m;
    m.set_exact(FieldId::kDstIp, 0xc0000000u + a * 7919u + uint32_t(seed));
    mut.add_matches.push_back(m);
  }
  const NetworkPolicy newp = netplan::mutate_policy(topo, oldp, mut);
  const UpdatePlan plan =
      netplan::plan_update(topo, oldp, newp, {strategy, 0});
  ASSERT_GT(plan.rounds.size(), 0u);

  netplan::FleetConfig fc;
  fc.runtime.knobs.faults = FaultSpec::crashy();
  // The default crash rate is tuned for thousand-epoch logs; a short
  // planner schedule needs a harsher mix to actually crash mid-round.
  fc.runtime.knobs.faults.crash_p = 0.05;
  fc.runtime.knobs.faults.restart_every_ms = 60.0;
  fc.runtime.fault_seed = seed;
  fc.runtime.n_threads = 2;
  fc.runtime.tcam_capacity = plan.peak_switch_rules + 16;
  netplan::FleetController fleet(netplan::materialize(topo, plan), fc);

  AuditConfig acfg;
  acfg.seed = seed ^ 0xa0d17;
  const ConsistencyAuditor auditor(
      topo, oldp, newp, netplan::tables_from(plan.initial),
      netplan::tables_from(plan.final_tables), acfg);
  const LookupFn live = fleet.lookup();

  size_t mixed = 0;
  const netplan::FleetReport report = fleet.run([&](size_t epoch, double) {
    const auto audit = auditor.audit(live);
    mixed += audit.mixed;
    ++totals.audits;
    if (audit.mixed > 0 && !audit.violations.empty()) {
      ADD_FAILURE() << "epoch " << epoch << ": " << audit.violations.front();
    }
  });

  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.merged.all_converged);
  EXPECT_EQ(report.merged.apply_failures, 0u);
  EXPECT_EQ(mixed, 0u);
  totals.crashes += report.merged.crashes;
  totals.restarts += report.merged.restarts;
  for (const auto& s : report.merged.sessions) {
    totals.dropped += s.wire.dropped;
    totals.corrupted += s.wire.corrupted;
  }
}

TEST(NetplanSoak, ConsistentAcrossCrashSeedsAndStrategies) {
  SoakTotals totals;
  for (uint64_t seed : {3u, 5u, 9u}) {
    for (Strategy strategy :
         {Strategy::kRounds, Strategy::kTwoPhase, Strategy::kAuto}) {
      soak_one(seed, strategy, totals);
    }
  }
  // The gauntlet must have actually fired: wire faults and firmware
  // crashes, not a quiet fair-weather pass.
  EXPECT_GT(totals.dropped, 0u);
  EXPECT_GT(totals.corrupted, 0u);
  EXPECT_GT(totals.crashes, 0u);
  EXPECT_GT(totals.audits, 9u);
  std::printf("soak: %zu audits, %zu crashes, %zu restarts, %zu drops, "
              "%zu corrupt frames — all boundaries consistent\n",
              totals.audits, totals.crashes, totals.restarts, totals.dropped,
              totals.corrupted);
}

}  // namespace
}  // namespace ruletris
