// Fleet fault-tolerance soak: a seeded ChaosSchedule (shard kills mid-
// stream, agent blackout windows) on top of brownout wires with firmware
// crash-loops, asserting the three recovery guarantees end to end:
//
//   1. shard failover — survivors adopt the orphaned switches by verifying
//      and replaying the hash-chained RTDZ delta blobs, and the adopted
//      streams are bit-identical to a never-failed run (layout and delta
//      fingerprints equal the clean run's);
//   2. switch quarantine — a blacked-out agent benches its session instead
//      of stalling dispatch, is excluded from the fleet makespan, and is
//      re-admitted auditor-clean once the probe loop reaches it again;
//   3. determinism — the whole chaos run is bit-identical across dispatch
//      thread counts, faults and recoveries included.
//
// Plus the FleetSpec entry validation and the deadline-miss finalization
// path (a switch that never comes back must not hang the run).
#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/config.h"
#include "runtime/sharded_controller.h"

namespace ruletris {
namespace {

/// Small enough for the 1-core ASAN/TSAN trees, big enough that both kills
/// fire mid-stream and the blackout spans several retry escalations.
runtime::FleetSpec chaos_base_spec() {
  runtime::FleetSpec spec;
  spec.n_switches = 6;
  spec.n_shards = 3;
  spec.updates_per_switch = 12;
  spec.seed = 21;
  spec.fault_seed = 9;
  spec.audit_stride = 2;
  spec.tcam_capacity = 1024;
  return spec;
}

runtime::ChaosSchedule chaos_schedule() {
  runtime::ChaosSchedule chaos;
  // Shards 1 and 2 die early on their compile clocks; shard 0 is spared
  // and must adopt all four orphaned switches, in kill order.
  chaos.shard_kills.push_back({1, 0.3});
  chaos.shard_kills.push_back({2, 0.8});
  // Two agents go dark long enough to exhaust the quarantine escalation.
  chaos.blackouts.push_back({1, {30.0, 400.0}});
  chaos.blackouts.push_back({4, {60.0, 300.0}});
  return chaos;
}

TEST(ChaosSoakTest, RecoversBitIdenticalToCleanRunAcrossThreadCounts) {
  runtime::FleetSpec spec = chaos_base_spec();
  spec.n_threads = 1;
  const runtime::FleetReport clean = runtime::ShardedController(spec).run();
  ASSERT_TRUE(clean.runtime.all_converged);
  ASSERT_TRUE(clean.replay_ok);
  EXPECT_EQ(clean.shard_kills, 0u);
  EXPECT_EQ(clean.quarantines, 0u);
  EXPECT_EQ(clean.active_switches, 6u);

  spec.chaos = chaos_schedule();
  spec.knobs.faults = runtime::FaultSpec::brownout();
  spec.knobs.retry.quarantine_after = 3;
  const runtime::FleetReport chaos = runtime::ShardedController(spec).run();

  // Every fault class actually fired...
  EXPECT_EQ(chaos.shard_kills + chaos.kills_escaped, 2u);
  EXPECT_GT(chaos.shard_kills, 0u) << "kill times after the compile finished";
  EXPECT_GT(chaos.failovers, 0u);
  EXPECT_GT(chaos.failover_epochs, 0u);
  EXPECT_GT(chaos.quarantines, 0u) << "no session ever quarantined";
  EXPECT_GT(chaos.runtime.blackout_drops, 0u);
  EXPECT_GT(chaos.runtime.probe_sends, 0u);
  EXPECT_GT(chaos.runtime.crashes, 0u);

  // ...and every switch still converged, recoveries verified clean.
  EXPECT_TRUE(chaos.runtime.all_converged);
  EXPECT_TRUE(chaos.failover_ok) << "adopted stream diverged from the blobs";
  EXPECT_TRUE(chaos.replay_ok);
  EXPECT_EQ(chaos.runtime.readmit_failures, 0u);
  EXPECT_EQ(chaos.runtime.rejoin_audit_violations, 0u);
  EXPECT_EQ(chaos.readmissions, chaos.quarantines)
      << "a quarantined switch never made it back";
  EXPECT_GT(chaos.rejoin_ms.count(), 0u);

  // The recovery guarantee: final TCAM layouts and the full delta-hash
  // chains are bit-identical to the never-failed run's.
  EXPECT_EQ(chaos.layout_fingerprint, clean.layout_fingerprint);
  EXPECT_EQ(chaos.delta_fingerprint, clean.delta_fingerprint);

  // Quarantined switches are excluded from the fleet makespan.
  EXPECT_LT(chaos.active_switches, 6u);
  EXPECT_GT(chaos.active_switches, 0u);
  EXPECT_LE(chaos.makespan_ms, chaos.runtime.makespan_ms);
  EXPECT_GT(chaos.updates_per_s(), 0.0);

  // Whole-run determinism across worker counts, chaos included.
  for (const size_t threads : {2u, 5u}) {
    spec.n_threads = threads;
    const runtime::FleetReport rep = runtime::ShardedController(spec).run();
    EXPECT_EQ(rep.fleet_fingerprint, chaos.fleet_fingerprint)
        << threads << " threads";
    EXPECT_EQ(rep.delta_fingerprint, chaos.delta_fingerprint)
        << threads << " threads";
    EXPECT_EQ(rep.layout_fingerprint, chaos.layout_fingerprint)
        << threads << " threads";
    EXPECT_EQ(rep.shard_kills, chaos.shard_kills);
    EXPECT_EQ(rep.failovers, chaos.failovers);
    EXPECT_EQ(rep.failover_epochs, chaos.failover_epochs);
    EXPECT_EQ(rep.quarantines, chaos.quarantines);
    EXPECT_EQ(rep.readmissions, chaos.readmissions);
    EXPECT_DOUBLE_EQ(rep.makespan_ms, chaos.makespan_ms);
    EXPECT_DOUBLE_EQ(rep.compile_vt_ms, chaos.compile_vt_ms);
    EXPECT_TRUE(rep.runtime.all_converged);
    EXPECT_TRUE(rep.failover_ok);
  }
}

TEST(ChaosSoakTest, AdaptiveBackoffBoundsRetransmitsUnderHeavyLoss) {
  // The designed-for case: brownout windows where the wire swallows nearly
  // everything. The fixed 25 ms timer retransmits the whole window into the
  // dark stretch over and over; escalation spaces the rounds out instead.
  runtime::FleetSpec spec = chaos_base_spec();
  spec.n_threads = 1;
  spec.knobs.faults.drop_p = 0.05;
  spec.knobs.faults.brownout_drop_p = 0.9;
  spec.knobs.faults.brownout_period_ms = 400.0;
  spec.knobs.faults.brownout_duty = 0.5;

  spec.knobs.retry.adaptive = false;
  const runtime::FleetReport fixed = runtime::ShardedController(spec).run();
  spec.knobs.retry.adaptive = true;
  const runtime::FleetReport adaptive = runtime::ShardedController(spec).run();

  ASSERT_TRUE(fixed.runtime.all_converged);
  ASSERT_TRUE(adaptive.runtime.all_converged);
  EXPECT_EQ(adaptive.layout_fingerprint, fixed.layout_fingerprint);
  EXPECT_LT(adaptive.runtime.retransmits, fixed.runtime.retransmits)
      << "escalation failed to thin the retransmit storm";

  // Sustained (non-bursty) loss at the acceptance threshold also favors
  // escalation: spurious rounds fired while acks are still in flight thin
  // out once the interval grows past the loaded round trip.
  spec.knobs.faults = runtime::FaultSpec();
  spec.knobs.faults.drop_p = 0.3;
  spec.knobs.retry.adaptive = false;
  const runtime::FleetReport fixed_drop = runtime::ShardedController(spec).run();
  spec.knobs.retry.adaptive = true;
  const runtime::FleetReport adaptive_drop =
      runtime::ShardedController(spec).run();
  ASSERT_TRUE(adaptive_drop.runtime.all_converged);
  EXPECT_EQ(adaptive_drop.layout_fingerprint, fixed_drop.layout_fingerprint);
  EXPECT_LT(adaptive_drop.runtime.retransmits, fixed_drop.runtime.retransmits);
}

TEST(FleetSpecValidationTest, RejectsMalformedSpecsWithDescriptiveErrors) {
  const runtime::FleetSpec good = chaos_base_spec();
  EXPECT_NO_THROW(runtime::ShardedController::validate(good));

  runtime::FleetSpec s = good;
  s.n_switches = 0;
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.n_shards = 0;
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.n_shards = s.n_switches + 1;
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.n_threads = 0;
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.compile_per_op_ms = 0.0;  // ready times would stop strictly increasing
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.failover_replay_factor = -0.5;
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.chaos.shard_kills.push_back({s.n_shards, 1.0});  // shard out of range
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.chaos.shard_kills.push_back({0, 1.0});
  s.chaos.shard_kills.push_back({0, 2.0});  // two kills on one shard
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  for (size_t k = 0; k < s.n_shards; ++k) {
    s.chaos.shard_kills.push_back({k, 1.0});  // nobody left to adopt
  }
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.chaos.blackouts.push_back({s.n_switches, {10.0, 10.0}});  // bad switch
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);

  s = good;
  s.chaos.blackouts.push_back({0, {10.0, 0.0}});  // empty window
  EXPECT_THROW(runtime::ShardedController::validate(s), std::invalid_argument);
}

TEST(DeadlineMissTest, UnreachableSwitchFinalizesIncompleteInsteadOfHanging) {
  runtime::FleetSpec spec = chaos_base_spec();
  spec.n_switches = 3;
  spec.n_shards = 1;
  spec.n_threads = 2;
  spec.knobs.deadline_ms = 3000.0;
  // Switch 1's agent is dark for the whole run; with quarantine disabled
  // the session retransmits (with escalation) until the deadline trips the
  // finalize-incomplete path instead of looping forever.
  spec.knobs.retry.quarantine_after = 0;
  spec.chaos.blackouts.push_back({1, {0.0, 1e9}});

  const runtime::FleetReport rep = runtime::ShardedController(spec).run();
  EXPECT_FALSE(rep.runtime.all_converged);
  ASSERT_EQ(rep.runtime.sessions.size(), 3u);
  EXPECT_FALSE(rep.runtime.sessions[1].completed);
  EXPECT_TRUE(rep.runtime.sessions[0].completed);
  EXPECT_TRUE(rep.runtime.sessions[2].completed);
  EXPECT_GT(rep.runtime.sessions[1].blackout_drops, 0u);
  EXPECT_EQ(rep.quarantines, 0u);
  // No quarantine -> the dead switch stays in the makespan basis, pinned
  // at its deadline.
  EXPECT_GE(rep.runtime.makespan_ms, spec.knobs.deadline_ms);
}

}  // namespace
}  // namespace ruletris
