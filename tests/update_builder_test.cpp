// UpdateBuilder: net-effect normalization of chronological visible-state
// mutations (the contract parents and the back-end rely on).
#include <gtest/gtest.h>

#include "compiler/update_builder.h"
#include "flowspace/rule.h"

namespace ruletris {
namespace {

using compiler::UpdateBuilder;
using flowspace::ActionList;
using flowspace::Rule;
using flowspace::TernaryMatch;

Rule make_rule(flowspace::RuleId id) {
  Rule r;
  r.id = id;
  r.match = TernaryMatch::wildcard();
  return r;
}

TEST(UpdateBuilder, PlainAddAndRemove) {
  UpdateBuilder b;
  b.add_rule(make_rule(1));
  b.remove_rule(2);
  const auto out = b.build();
  ASSERT_EQ(out.added.size(), 1u);
  EXPECT_EQ(out.added[0].id, 1u);
  ASSERT_EQ(out.removed.size(), 1u);
  EXPECT_EQ(out.removed[0], 2u);
  EXPECT_EQ(out.dag.added_vertices.size(), 1u);
  EXPECT_EQ(out.dag.removed_vertices.size(), 1u);
}

TEST(UpdateBuilder, AddThenRemoveCancels) {
  UpdateBuilder b;
  b.add_rule(make_rule(1));
  b.remove_rule(1);
  const auto out = b.build();
  EXPECT_TRUE(out.empty()) << "transient rule must not surface";
}

TEST(UpdateBuilder, RemoveThenAddSurfacesAsRefresh) {
  UpdateBuilder b;
  b.remove_rule(1);
  b.add_rule(make_rule(1));
  const auto out = b.build();
  ASSERT_EQ(out.removed.size(), 1u);
  ASSERT_EQ(out.added.size(), 1u);
  EXPECT_EQ(out.removed[0], 1u);
  EXPECT_EQ(out.added[0].id, 1u);
}

TEST(UpdateBuilder, EdgeAddRemoveNetsToNothing) {
  UpdateBuilder b;
  b.add_edge(1, 2);
  b.remove_edge(1, 2);
  EXPECT_TRUE(b.build().empty());
}

TEST(UpdateBuilder, EdgeRemoveAddNetsToNothing) {
  UpdateBuilder b;
  b.remove_edge(1, 2);
  b.add_edge(1, 2);
  EXPECT_TRUE(b.build().empty());
}

TEST(UpdateBuilder, EdgesTouchingCancelledVertexDropped) {
  UpdateBuilder b;
  b.add_rule(make_rule(5));
  b.add_edge(5, 9);
  b.add_edge(9, 5);
  b.remove_rule(5);  // cancels the add; its edges must vanish too
  const auto out = b.build();
  EXPECT_TRUE(out.dag.added_edges.empty());
  EXPECT_TRUE(out.added.empty());
  EXPECT_TRUE(out.removed.empty());
}

TEST(UpdateBuilder, EdgesTouchingRemovedVertexAreImplied) {
  UpdateBuilder b;
  b.remove_edge(1, 7);
  b.remove_rule(7);
  const auto out = b.build();
  // The vertex removal implies its incident edge removals; no explicit
  // edge entries referencing the dead vertex survive.
  EXPECT_TRUE(out.dag.removed_edges.empty());
  ASSERT_EQ(out.removed.size(), 1u);
}

TEST(UpdateBuilder, EdgeBetweenSurvivorsIsReported) {
  UpdateBuilder b;
  b.remove_edge(1, 2);
  b.add_edge(3, 4);
  const auto out = b.build();
  ASSERT_EQ(out.dag.removed_edges.size(), 1u);
  EXPECT_EQ(out.dag.removed_edges[0], (std::pair<flowspace::RuleId, flowspace::RuleId>{1, 2}));
  ASSERT_EQ(out.dag.added_edges.size(), 1u);
}

TEST(UpdateBuilder, RepresentativeFlipFlopScenario) {
  // add(x); demote: remove(x), add(y); y removed again: remove(y), add(x).
  UpdateBuilder b;
  b.add_rule(make_rule(10));
  b.remove_rule(10);
  b.add_rule(make_rule(11));
  b.remove_rule(11);
  b.add_rule(make_rule(10));
  const auto out = b.build();
  ASSERT_EQ(out.added.size(), 1u);
  EXPECT_EQ(out.added[0].id, 10u);
  EXPECT_TRUE(out.removed.empty()) << "10 was added first in this very update";
}

TEST(UpdateBuilder, LatestRuleDataWins) {
  UpdateBuilder b;
  Rule first = make_rule(1);
  first.priority = 5;
  Rule second = make_rule(1);
  second.priority = 9;
  b.add_rule(first);
  b.remove_rule(1);
  b.add_rule(second);
  const auto out = b.build();
  ASSERT_EQ(out.added.size(), 1u);
  EXPECT_EQ(out.added[0].priority, 9);
}

}  // namespace
}  // namespace ruletris
