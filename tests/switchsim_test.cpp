// End-to-end pipeline: compiler -> protocol encode/decode -> switch firmware
// -> TCAM, for all three compilers, verifying identical data-plane behaviour
// and the expected cost asymmetries.
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "compiler/baseline.h"
#include "compiler/covisor.h"
#include "compiler/ruletris_compiler.h"
#include "switchsim/adapters.h"
#include "switchsim/switch.h"
#include "test_util.h"

namespace ruletris {
namespace {

using compiler::BaselineCompiler;
using compiler::CovisorCompiler;
using compiler::PolicySpec;
using compiler::RuleTrisCompiler;
using compiler::TableUpdate;
using flowspace::FlowTable;
using flowspace::Rule;
using flowspace::RuleId;
using switchsim::FirmwareMode;
using switchsim::SimulatedSwitch;
using switchsim::to_messages;
using testutil::random_rule;
using util::Rng;


/// CoVisor's priority algebra (like the real system) assumes overlapping
/// rules within one member table carry distinct priorities; draw without
/// replacement.
struct DistinctPriorities {
  std::unordered_set<int32_t> used;
  int32_t draw(Rng& rng) {
    for (;;) {
      const int32_t p = 1 + static_cast<int32_t>(rng.next_below(4096));
      if (used.insert(p).second) return p;
    }
  }
};

std::vector<Rule> random_table_rules(Rng& rng, int n, DistinctPriorities& prios) {
  std::vector<Rule> rules;
  for (int i = 0; i < n; ++i) {
    rules.push_back(random_rule(rng, prios.draw(rng)));
  }
  return rules;
}

/// Installs a RuleTris compiler's full current state onto a DAG switch.
void install_ruletris(RuleTrisCompiler& compiler, SimulatedSwitch& sw) {
  TableUpdate initial;
  initial.added = compiler.root().visible_rules_in_order();
  for (const Rule& r : initial.added) initial.dag.added_vertices.push_back(r.id);
  initial.dag.added_edges = compiler.root().visible_graph().edges();
  const auto metrics = sw.deliver(to_messages(initial));
  ASSERT_TRUE(metrics.ok);
}

TEST(SwitchSim, EndToEndThreeCompilersAgree) {
  Rng rng(21);
  for (int trial = 0; trial < 4; ++trial) {
    DistinctPriorities prios;
    auto t1 = random_table_rules(rng, 5, prios);
    auto t2 = random_table_rules(rng, 5, prios);
    std::map<std::string, FlowTable> tables;
    tables.emplace("a", FlowTable{t1});
    tables.emplace("b", FlowTable{t2});
    const PolicySpec spec =
        PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b"));

    RuleTrisCompiler ruletris(spec, tables);
    CovisorCompiler covisor(spec, tables);
    BaselineCompiler baseline(spec, tables);

    SimulatedSwitch sw_ruletris(FirmwareMode::kDag, 128);
    SimulatedSwitch sw_covisor(FirmwareMode::kPriority, 128);
    SimulatedSwitch sw_baseline(FirmwareMode::kPriority, 128);

    install_ruletris(ruletris, sw_ruletris);
    {
      compiler::PrioritizedUpdate initial;
      for (const Rule& r : covisor.compiled()) {
        initial.push_back(compiler::PrioritizedOp::add(r));
      }
      ASSERT_TRUE(sw_covisor.deliver(to_messages(initial)).ok);
    }
    {
      compiler::PrioritizedUpdate initial;
      for (const Rule& r : baseline.compiled()) {
        initial.push_back(compiler::PrioritizedOp::add(r));
      }
      ASSERT_TRUE(sw_baseline.deliver(to_messages(initial)).ok);
    }

    // Mixed update stream applied through all three pipelines.
    std::vector<RuleId> live;
    for (const Rule& r : t1) live.push_back(r.id);
    for (int step = 0; step < 12; ++step) {
      if (!live.empty() && rng.next_bool(0.4)) {
        const size_t pick = rng.next_below(live.size());
        const RuleId id = live[pick];
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
        ASSERT_TRUE(sw_ruletris.deliver(to_messages(ruletris.remove("a", id))).ok);
        ASSERT_TRUE(sw_covisor.deliver(to_messages(covisor.remove("a", id))).ok);
        ASSERT_TRUE(sw_baseline.deliver(to_messages(baseline.remove("a", id))).ok);
      } else {
        Rule r = random_rule(rng, prios.draw(rng));
        live.push_back(r.id);
        ASSERT_TRUE(sw_ruletris.deliver(to_messages(ruletris.insert("a", r))).ok);
        ASSERT_TRUE(sw_covisor.deliver(to_messages(covisor.insert("a", r))).ok);
        ASSERT_TRUE(sw_baseline.deliver(to_messages(baseline.insert("a", r))).ok);
      }

      // All three TCAMs classify identically (by actions).
      for (int k = 0; k < 100; ++k) {
        const auto p = testutil::random_packet(rng);
        const Rule* a = sw_ruletris.tcam().lookup(p);
        const Rule* b = sw_covisor.tcam().lookup(p);
        const Rule* c = sw_baseline.tcam().lookup(p);
        ASSERT_EQ(a == nullptr, b == nullptr);
        ASSERT_EQ(a == nullptr, c == nullptr);
        if (a != nullptr) {
          EXPECT_EQ(a->actions, b->actions);
          EXPECT_EQ(a->actions, c->actions);
        }
      }
    }
  }
}

TEST(SwitchSim, DagFirmwareUsesFewerWritesThanBaselinePipeline) {
  Rng rng(22);
  DistinctPriorities prios;
  auto t1 = random_table_rules(rng, 8, prios);
  auto t2 = random_table_rules(rng, 8, prios);
  std::map<std::string, FlowTable> tables;
  tables.emplace("a", FlowTable{t1});
  tables.emplace("b", FlowTable{t2});
  const PolicySpec spec =
      PolicySpec::parallel(PolicySpec::leaf("a"), PolicySpec::leaf("b"));

  RuleTrisCompiler ruletris(spec, tables);
  BaselineCompiler baseline(spec, tables);
  SimulatedSwitch sw_dag(FirmwareMode::kDag, 256);
  SimulatedSwitch sw_prio(FirmwareMode::kPriority, 256);
  install_ruletris(ruletris, sw_dag);
  {
    compiler::PrioritizedUpdate initial;
    for (const Rule& r : baseline.compiled()) {
      initial.push_back(compiler::PrioritizedOp::add(r));
    }
    ASSERT_TRUE(sw_prio.deliver(to_messages(initial)).ok);
  }

  size_t dag_writes = 0, prio_writes = 0;
  for (int step = 0; step < 10; ++step) {
    Rule r = random_rule(rng, prios.draw(rng));
    auto m1 = sw_dag.deliver(to_messages(ruletris.insert("a", r)));
    auto m2 = sw_prio.deliver(to_messages(baseline.insert("a", r)));
    ASSERT_TRUE(m1.ok);
    ASSERT_TRUE(m2.ok);
    dag_writes += m1.entry_writes;
    prio_writes += m2.entry_writes;
  }
  EXPECT_LT(dag_writes, prio_writes);
}

TEST(SwitchSim, MetricsDecomposition) {
  SimulatedSwitch sw(FirmwareMode::kDag, 16);
  Rng rng(1);
  TableUpdate update;
  Rule r = random_rule(rng, 5);
  update.added.push_back(r);
  update.dag.added_vertices.push_back(r.id);
  const auto metrics = sw.deliver(to_messages(update));
  EXPECT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.entry_writes, 1u);
  EXPECT_DOUBLE_EQ(metrics.tcam_ms, tcam::kEntryWriteMs);
  EXPECT_GT(metrics.channel_ms, 0.0);
  EXPECT_GE(metrics.total_ms(), metrics.tcam_ms + metrics.channel_ms);
}

TEST(SwitchSim, WrongFirmwareAccessorThrows) {
  SimulatedSwitch dag_switch(FirmwareMode::kDag, 8);
  SimulatedSwitch prio_switch(FirmwareMode::kPriority, 8);
  EXPECT_THROW(dag_switch.priority_firmware(), std::logic_error);
  EXPECT_THROW(prio_switch.dag_firmware(), std::logic_error);
  EXPECT_NO_THROW(dag_switch.dag_firmware());
  EXPECT_NO_THROW(prio_switch.priority_firmware());
}

}  // namespace
}  // namespace ruletris
