// DependencyGraph under randomized op streams, cross-checked against a
// naive shadow implementation (adjacency sets, recomputed queries).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dag/dependency_graph.h"
#include "util/rng.h"

namespace ruletris {
namespace {

using dag::DependencyGraph;
using flowspace::RuleId;
using util::Rng;

struct ShadowGraph {
  std::set<RuleId> vertices;
  std::set<std::pair<RuleId, RuleId>> edges;

  void add_vertex(RuleId v) { vertices.insert(v); }
  void remove_vertex(RuleId v) {
    vertices.erase(v);
    for (auto it = edges.begin(); it != edges.end();) {
      it = (it->first == v || it->second == v) ? edges.erase(it) : std::next(it);
    }
  }
  void add_edge(RuleId u, RuleId v) {
    vertices.insert(u);
    vertices.insert(v);
    edges.insert({u, v});
  }
  void remove_edge(RuleId u, RuleId v) { edges.erase({u, v}); }

  bool reaches(RuleId from, RuleId to) const {
    if (!vertices.count(from) || !vertices.count(to)) return false;
    std::set<RuleId> seen{from};
    std::vector<RuleId> stack{from};
    while (!stack.empty()) {
      const RuleId cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      for (const auto& [u, v] : edges) {
        if (u == cur && seen.insert(v).second) stack.push_back(v);
      }
    }
    return false;
  }
};

TEST(GraphProperty, RandomOpStreamMatchesShadow) {
  Rng rng(19);
  for (int trial = 0; trial < 5; ++trial) {
    DependencyGraph graph;
    ShadowGraph shadow;
    constexpr RuleId kUniverse = 12;

    for (int step = 0; step < 400; ++step) {
      const RuleId u = 1 + rng.next_below(kUniverse);
      const RuleId v = 1 + rng.next_below(kUniverse);
      switch (rng.next_below(5)) {
        case 0:
          graph.add_vertex(u);
          shadow.add_vertex(u);
          break;
        case 1:
          graph.remove_vertex(u);
          shadow.remove_vertex(u);
          break;
        case 2:
          if (u != v && !shadow.reaches(v, u)) {  // keep it a DAG
            graph.add_edge(u, v);
            shadow.add_edge(u, v);
          }
          break;
        case 3:
          graph.remove_edge(u, v);
          shadow.remove_edge(u, v);
          break;
        case 4: {
          // Full-state audit.
          ASSERT_EQ(graph.vertex_count(), shadow.vertices.size());
          ASSERT_EQ(graph.edge_count(), shadow.edges.size());
          auto edges = graph.edges();
          using EdgeSet = std::set<std::pair<RuleId, RuleId>>;
          const EdgeSet actual(edges.begin(), edges.end());
          ASSERT_EQ(actual, shadow.edges);
          break;
        }
      }
      // Spot queries every step.
      ASSERT_EQ(graph.has_edge(u, v), shadow.edges.count({u, v}) != 0);
      ASSERT_EQ(graph.reaches(u, v), shadow.reaches(u, v));
      if (shadow.vertices.count(u)) {
        size_t out = 0, in = 0;
        for (const auto& [a, b] : shadow.edges) {
          out += a == u;
          in += b == u;
        }
        ASSERT_EQ(graph.successors(u).size(), out);
        ASSERT_EQ(graph.predecessors(u).size(), in);
      }
    }

    // The stream kept the graph acyclic, so a topological order must exist
    // and respect every edge.
    const auto order = graph.topo_order_high_to_low();
    ASSERT_EQ(order.size(), graph.vertex_count());
    std::map<RuleId, size_t> pos;
    for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const auto& [u, v] : graph.edges()) {
      EXPECT_LT(pos.at(v), pos.at(u)) << "dependency must be matched first";
    }
  }
}

TEST(GraphProperty, SourcesAndSinksPartitionCorrectly) {
  Rng rng(23);
  DependencyGraph graph;
  for (int i = 0; i < 60; ++i) {
    const RuleId u = 1 + rng.next_below(20);
    const RuleId v = 1 + rng.next_below(20);
    if (u != v && !graph.reaches(v, u)) graph.add_edge(u, v);
  }
  for (RuleId s : graph.sources()) EXPECT_TRUE(graph.successors(s).empty());
  for (RuleId s : graph.sinks()) EXPECT_TRUE(graph.predecessors(s).empty());
}

}  // namespace
}  // namespace ruletris
